//! Qualified type inference (§2.3, §3.1, §3.2 of the paper).
//!
//! Inference runs in the two phases the paper's factorization result
//! allows (§1): first standard unification ([`crate::unify`]), then a
//! qualifier phase that decorates every node's standard type with fresh
//! qualifier variables (the `sp` spread operator) and generates *atomic*
//! subtype constraints at every flow point, folding the subsumption rule
//! into the syntax-directed rules. Structural decomposition happens
//! eagerly: because phase A already unified the shapes, every subtype
//! constraint between qualified types decomposes completely into lattice
//! constraints (`SubInt`/`SubFun`/`SubRef`/`SubUnit` of Figure 4a), which
//! [`qual_solve`] solves in linear time.
//!
//! Let-polymorphism follows §3.2: bindings of *syntactic values* are
//! generalized over the qualifier variables created while inferring the
//! right-hand side (which are exactly those not free in the environment),
//! with the captured constraints re-instantiated at each use (rules
//! (Letv) and (Var′)).

use std::collections::HashMap;

use qual_lattice::{QualSet, QualSpace};
use qual_solve::{
    ConstraintSet, Provenance, QVar, Qual, Scheme, Solution, SolveError, VarSupply, Violation,
};

use crate::ast::{Expr, ExprKind, NodeId, Span};
use crate::error::LambdaError;
use crate::parser::parse;
use crate::rules::QualifierRules;
use crate::types::{QShape, QTyArena, QTyId};
use crate::unify::{infer_standard, StandardTyping};

/// Everything inference learned about a program.
///
/// Qualifier violations are an analysis *result*, not an error: a program
/// that parses and has a standard type always produces an `Outcome`;
/// check [`Outcome::is_well_qualified`].
#[derive(Debug)]
pub struct Outcome {
    /// Arena of all qualified types built during inference.
    pub quals: QTyArena,
    /// The qualified type of the whole program.
    pub root: QTyId,
    /// The qualified type of every expression node.
    pub node_qty: HashMap<NodeId, QTyId>,
    /// The generated constraint set.
    pub constraints: ConstraintSet,
    /// The variable supply used (sizes the solution).
    pub vars: VarSupply,
    /// Least/greatest solutions, or the violations if unsatisfiable.
    pub solution: Result<Solution, SolveError>,
    /// How many unconstrained standard type variables were defaulted to
    /// `int` during spreading.
    pub defaulted: usize,
    space: QualSpace,
}

impl Outcome {
    /// Whether all qualifier constraints are satisfiable.
    #[must_use]
    pub fn is_well_qualified(&self) -> bool {
        self.solution.is_ok()
    }

    /// The solution, if the program is well qualified.
    #[must_use]
    pub fn solution(&self) -> Option<&Solution> {
        self.solution.as_ref().ok()
    }

    /// The violated constraints, if any.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        match &self.solution {
            Ok(_) => &[],
            Err(e) => &e.violations,
        }
    }

    /// Renders the program's qualified type.
    #[must_use]
    pub fn render_root(&self) -> String {
        self.quals.render(self.root, &self.space)
    }

    /// The least qualifier on node `id`'s type, under the least solution.
    #[must_use]
    pub fn least_qual_of(&self, id: NodeId) -> Option<QualSet> {
        let qty = *self.node_qty.get(&id)?;
        let sol = self.solution()?;
        Some(sol.eval_least(self.quals.get(qty).qual))
    }

    /// The qualifier space this outcome was inferred against.
    #[must_use]
    pub fn space(&self) -> &QualSpace {
        &self.space
    }

    /// Renders every qualifier violation as a compiler-style diagnostic
    /// against the original source text (empty when well qualified).
    #[must_use]
    pub fn render_violations(&self, src: &str) -> String {
        match &self.solution {
            Ok(_) => String::new(),
            Err(e) => qual_solve::diag::render_violations(src, e),
        }
    }
}

/// Parses and infers in one step.
///
/// # Errors
///
/// Returns [`LambdaError`] on syntax or standard type errors. Qualifier
/// violations are reported in the returned [`Outcome`].
pub fn infer_program(
    src: &str,
    space: &QualSpace,
    rules: &dyn QualifierRules,
) -> Result<Outcome, LambdaError> {
    let expr = parse(src, space)?;
    infer_expr(&expr, space, rules)
}

/// Runs both inference phases on an already-parsed program.
///
/// # Errors
///
/// Returns [`LambdaError::Type`] if the program has no standard type.
pub fn infer_expr(
    expr: &Expr,
    space: &QualSpace,
    rules: &dyn QualifierRules,
) -> Result<Outcome, LambdaError> {
    let std = infer_standard(expr)?;
    Ok(infer_qualifiers(expr, &std, space, rules))
}

/// Phase B alone: qualifier inference over a completed standard typing.
pub fn infer_qualifiers(
    expr: &Expr,
    std: &StandardTyping,
    space: &QualSpace,
    rules: &dyn QualifierRules,
) -> Outcome {
    let mut cx = Cx {
        std,
        quals: QTyArena::new(),
        supply: VarSupply::new(),
        cs: ConstraintSet::new(),
        env: Vec::new(),
        rules,
        space: space.clone(),
        node_qty: HashMap::new(),
        defaulted: 0,
    };
    let root = cx.infer(expr);

    // Well-formedness: one hook call per constructor edge of every
    // qualified type built (including scheme instantiations).
    let edges: Vec<(Qual, Qual)> = cx
        .quals
        .iter()
        .flat_map(|(_, node)| {
            let parent = node.qual;
            let children: Vec<QTyId> = match node.shape {
                QShape::Int | QShape::Unit => Vec::new(),
                QShape::Fun(a, b) | QShape::Pair(a, b) => vec![a, b],
                QShape::Ref(t) => vec![t],
            };
            children
                .into_iter()
                .map(move |c| (parent, c))
                .collect::<Vec<_>>()
        })
        .map(|(p, c)| (p, cx.quals.get(c).qual))
        .collect();
    for (p, c) in edges {
        rules.wf(space, p, c, &mut cx.cs);
    }

    let solution = cx.cs.solve(space, &cx.supply);
    Outcome {
        quals: cx.quals,
        root,
        node_qty: cx.node_qty,
        constraints: cx.cs,
        vars: cx.supply,
        solution,
        defaulted: cx.defaulted,
        space: space.clone(),
    }
}

struct Cx<'a> {
    std: &'a StandardTyping,
    quals: QTyArena,
    supply: VarSupply,
    cs: ConstraintSet,
    env: Vec<(String, Scheme<QTyId>)>,
    rules: &'a dyn QualifierRules,
    space: QualSpace,
    node_qty: HashMap<NodeId, QTyId>,
    defaulted: usize,
}

impl Cx<'_> {
    fn spread_of(&mut self, node: NodeId) -> QTyId {
        let ty = self.std.ty_of(node);
        self.quals
            .spread(&self.std.tys, ty, &mut self.supply, &mut self.defaulted)
    }

    fn prov(span: Span, what: &'static str) -> Provenance {
        Provenance::at(span.lo, span.hi, what)
    }

    /// Adds the decomposed subtype constraint `a ≤ b` (Figure 4a).
    ///
    /// Shapes agree by construction (phase A unified them), so
    /// decomposition always bottoms out in lattice constraints:
    /// covariant results, contravariant arguments, *invariant* ref
    /// contents (rule (SubRef) uses equality to keep aliases consistent).
    fn sub(&mut self, a: QTyId, b: QTyId, at: Provenance) {
        let (na, nb) = (self.quals.get(a), self.quals.get(b));
        self.cs.add_with(na.qual, nb.qual, at);
        match (na.shape, nb.shape) {
            (QShape::Int, QShape::Int) | (QShape::Unit, QShape::Unit) => {}
            (QShape::Fun(a1, r1), QShape::Fun(a2, r2)) => {
                self.sub(a2, a1, at); // contravariant
                self.sub(r1, r2, at); // covariant
            }
            (QShape::Pair(a1, b1), QShape::Pair(a2, b2)) => {
                self.sub(a1, a2, at); // both components covariant
                self.sub(b1, b2, at);
            }
            (QShape::Ref(t1), QShape::Ref(t2)) => self.eq(t1, t2, at),
            (x, y) => unreachable!(
                "phase A guaranteed matching shapes, got {x:?} vs {y:?} — this is a bug"
            ),
        }
    }

    /// Adds the decomposed equality `a = b` (both subtype directions).
    fn eq(&mut self, a: QTyId, b: QTyId, at: Provenance) {
        let (na, nb) = (self.quals.get(a), self.quals.get(b));
        self.cs.add_eq(na.qual, nb.qual, at);
        match (na.shape, nb.shape) {
            (QShape::Int, QShape::Int) | (QShape::Unit, QShape::Unit) => {}
            (QShape::Fun(a1, r1), QShape::Fun(a2, r2))
            | (QShape::Pair(a1, r1), QShape::Pair(a2, r2)) => {
                self.eq(a1, a2, at);
                self.eq(r1, r2, at);
            }
            (QShape::Ref(t1), QShape::Ref(t2)) => self.eq(t1, t2, at),
            (x, y) => unreachable!(
                "phase A guaranteed matching shapes, got {x:?} vs {y:?} — this is a bug"
            ),
        }
    }

    fn lookup(&self, x: &str) -> Option<&Scheme<QTyId>> {
        self.env.iter().rev().find(|(n, _)| n == x).map(|(_, s)| s)
    }

    fn infer(&mut self, e: &Expr) -> QTyId {
        let qty = match &e.kind {
            ExprKind::Var(x) => {
                let scheme = self
                    .lookup(x)
                    .unwrap_or_else(|| unreachable!("phase A checked variable scope"))
                    .clone();
                if scheme.is_polymorphic() {
                    // (Var′): instantiate with fresh qualifier variables.
                    let quals = &mut self.quals;
                    scheme.instantiate(&mut self.supply, &mut self.cs, |body, f| {
                        quals.copy_with(*body, f)
                    })
                } else {
                    *scheme.body()
                }
            }
            // (Int): the literal's intrinsic qualifier — the rules'
            // choice point, ⊥ by default — is a lower bound on the fresh
            // spread variable.
            ExprKind::Int(n) => {
                let out = self.spread_of(e.id);
                let lit = self.rules.literal_qual(&self.space, *n);
                if lit != self.space.bottom() {
                    let q = self.quals.get(out).qual;
                    self.cs.add_with(
                        Qual::Const(lit),
                        q,
                        Self::prov(e.span, "integer literal"),
                    );
                }
                out
            }
            ExprKind::Unit => self.spread_of(e.id),
            ExprKind::Loc(_) => {
                unreachable!("phase A rejected store locations in source programs")
            }
            ExprKind::Lam(x, body) => {
                let fun = self.spread_of(e.id);
                let QShape::Fun(arg, res) = self.quals.get(fun).shape else {
                    unreachable!("lambda node has function type after phase A")
                };
                self.env.push((x.clone(), Scheme::monomorphic(arg)));
                let b = self.infer(body);
                self.env.pop();
                self.sub(b, res, Self::prov(body.span, "function result"));
                fun
            }
            ExprKind::App(f, a) => {
                let tf = self.infer(f);
                let ta = self.infer(a);
                let QShape::Fun(param, res) = self.quals.get(tf).shape else {
                    unreachable!("operator has function type after phase A")
                };
                self.sub(ta, param, Self::prov(a.span, "argument"));
                let out = self.spread_of(e.id);
                self.sub(res, out, Self::prov(e.span, "application result"));
                let (fq, oq) = (self.quals.get(tf).qual, self.quals.get(out).qual);
                self.rules
                    .on_app(&self.space, fq, oq, &mut self.cs, Self::prov(e.span, "application"));
                out
            }
            ExprKind::If(g, t, f) => {
                let tg = self.infer(g);
                let tt = self.infer(t);
                let tf = self.infer(f);
                let out = self.spread_of(e.id);
                self.sub(tt, out, Self::prov(t.span, "then branch"));
                self.sub(tf, out, Self::prov(f.span, "else branch"));
                let (gq, oq) = (self.quals.get(tg).qual, self.quals.get(out).qual);
                self.rules
                    .on_if(&self.space, gq, oq, &mut self.cs, Self::prov(e.span, "conditional"));
                out
            }
            ExprKind::Let(x, rhs, body) => {
                let mark = self.supply.count();
                let tr = self.infer(rhs);
                let scheme = if rhs.is_value() {
                    // (Letv): generalize over the variables created while
                    // inferring the right-hand side — none of them can be
                    // free in the (older) environment.
                    let bound: Vec<QVar> = (mark..self.supply.count())
                        .map(QVar::from_index)
                        .collect();
                    Scheme::generalize(tr, bound, &self.cs)
                } else {
                    Scheme::monomorphic(tr)
                };
                self.env.push((x.clone(), scheme));
                let tb = self.infer(body);
                self.env.pop();
                tb
            }
            ExprKind::Ref(inner) => {
                let ti = self.infer(inner);
                let out = self.spread_of(e.id);
                let QShape::Ref(contents) = self.quals.get(out).shape else {
                    unreachable!("ref node has ref type after phase A")
                };
                self.sub(ti, contents, Self::prov(inner.span, "ref contents"));
                out
            }
            ExprKind::Deref(inner) => {
                let ti = self.infer(inner);
                let QShape::Ref(contents) = self.quals.get(ti).shape else {
                    unreachable!("deref operand has ref type after phase A")
                };
                self.rules.on_deref(
                    &self.space,
                    self.quals.get(ti).qual,
                    &mut self.cs,
                    Self::prov(e.span, "dereference"),
                );
                let out = self.spread_of(e.id);
                self.sub(contents, out, Self::prov(e.span, "dereference"));
                out
            }
            ExprKind::Assign(lhs, rhs) => {
                let tl = self.infer(lhs);
                let tr = self.infer(rhs);
                let QShape::Ref(contents) = self.quals.get(tl).shape else {
                    unreachable!("assignment target has ref type after phase A")
                };
                self.sub(tr, contents, Self::prov(rhs.span, "assigned value"));
                self.rules.on_assign(
                    &self.space,
                    self.quals.get(tl).qual,
                    &mut self.cs,
                    Self::prov(e.span, "assignment"),
                );
                self.spread_of(e.id) // fresh `κ unit`
            }
            ExprKind::Binop(_, a, b) => {
                let ta = self.infer(a);
                let tb = self.infer(b);
                let out = self.spread_of(e.id);
                let (qa, qb, qo) = (
                    self.quals.get(ta).qual,
                    self.quals.get(tb).qual,
                    self.quals.get(out).qual,
                );
                self.rules.on_arith(
                    &self.space,
                    qa,
                    qb,
                    qo,
                    &mut self.cs,
                    Self::prov(e.span, "arithmetic"),
                );
                out
            }
            ExprKind::Pair(a, b) => {
                let ta = self.infer(a);
                let tb = self.infer(b);
                let out = self.spread_of(e.id);
                let QShape::Pair(ca, cb) = self.quals.get(out).shape else {
                    unreachable!("pair node has pair type after phase A")
                };
                self.sub(ta, ca, Self::prov(a.span, "pair component"));
                self.sub(tb, cb, Self::prov(b.span, "pair component"));
                out
            }
            ExprKind::Fst(inner) => {
                let ti = self.infer(inner);
                let QShape::Pair(ca, _) = self.quals.get(ti).shape else {
                    unreachable!("fst operand has pair type after phase A")
                };
                let out = self.spread_of(e.id);
                self.sub(ca, out, Self::prov(e.span, "first projection"));
                out
            }
            ExprKind::Snd(inner) => {
                let ti = self.infer(inner);
                let QShape::Pair(_, cb) = self.quals.get(ti).shape else {
                    unreachable!("snd operand has pair type after phase A")
                };
                let out = self.spread_of(e.id);
                self.sub(cb, out, Self::prov(e.span, "second projection"));
                out
            }
            ExprKind::Annot(l, inner) => {
                // (Annot): requires Q ⊑ l and produces `l τ`.
                let ti = self.infer(inner);
                let node = self.quals.get(ti);
                self.cs.add_with(
                    node.qual,
                    Qual::Const(*l),
                    Self::prov(e.span, "qualifier annotation"),
                );
                self.quals.mk(Qual::Const(*l), node.shape)
            }
            ExprKind::Assert(inner, l) => {
                // (Assert): requires Q ⊑ l; the type is unchanged.
                let ti = self.infer(inner);
                let q = self.quals.get(ti).qual;
                self.cs.add_with(
                    q,
                    Qual::Const(*l),
                    Self::prov(e.span, "qualifier assertion"),
                );
                ti
            }
        };
        self.node_qty.insert(e.id, qty);
        qty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{ConstRules, NoRules, NonzeroRules};

    #[test]
    fn outcome_accessors() {
        let space = QualSpace::figure2();
        let out = infer_program("ref {nonzero} 1", &space, &NoRules).unwrap();
        assert!(out.is_well_qualified());
        assert!(out.solution().is_some());
        assert!(out.violations().is_empty());
        assert_eq!(out.space(), &space);
        assert_eq!(out.defaulted, 0);
        let rendered = out.render_root();
        assert!(rendered.contains("ref"), "{rendered}");
    }

    #[test]
    fn violations_surface_with_provenance() {
        let space = QualSpace::figure2();
        let out =
            infer_program("({nonzero} 0)|{top}", &space, &NonzeroRules).unwrap();
        // Annotating 0 with nonzero fails under NonzeroRules: 0's
        // intrinsic qualifier has nonzero absent, and the annotation
        // needs Q ⊑ l with l's nonzero coordinate at ⊥.
        assert!(!out.is_well_qualified());
        let v = &out.violations()[0];
        assert!(
            v.constraint.origin.what.contains("literal")
                || v.constraint.origin.what.contains("annotation"),
            "{:?}",
            v.constraint.origin
        );
    }

    #[test]
    fn least_qual_of_reports_node_quals() {
        let space = QualSpace::figure2();
        let expr = parse("{const} 5", &space).unwrap();
        let out = infer_expr(&expr, &space, &NoRules).unwrap();
        let q = out.least_qual_of(expr.id).unwrap();
        assert!(q.has(&space, space.id("const").unwrap()));
    }

    #[test]
    fn every_node_gets_a_qualified_type() {
        let space = ConstRules::space();
        let expr = parse("let f = \\x. !x in f (ref 1) ni", &space).unwrap();
        let out = infer_expr(&expr, &space, &ConstRules).unwrap();
        fn count(e: &crate::ast::Expr) -> usize {
            use crate::ast::ExprKind as K;
            1 + match &e.kind {
                K::Lam(_, b) | K::Ref(b) | K::Deref(b) | K::Annot(_, b) | K::Assert(b, _) => {
                    count(b)
                }
                K::App(a, b) | K::Assign(a, b) | K::Let(_, a, b) => count(a) + count(b),
                K::If(a, b, c) => count(a) + count(b) + count(c),
                _ => 0,
            }
        }
        assert_eq!(out.node_qty.len(), count(&expr));
    }

    #[test]
    fn defaulted_counts_unconstrained_type_vars() {
        // `\x. 0` never constrains x's type: spreading defaults it.
        let space = QualSpace::figure2();
        let out = infer_program("\\x. 0", &space, &NoRules).unwrap();
        assert!(out.defaulted > 0);
        assert!(out.is_well_qualified());
    }

    #[test]
    fn phase_b_runs_on_precomputed_standard_typing() {
        let space = ConstRules::space();
        let expr = parse("ref 1", &space).unwrap();
        let std = crate::unify::infer_standard(&expr).unwrap();
        let out = infer_qualifiers(&expr, &std, &space, &ConstRules);
        assert!(out.is_well_qualified());
    }
}
