//! The operational semantics of Figure 5: call-by-value evaluation over
//! *qualified values* `l v`, with a store for references.
//!
//! Every semantic value carries a qualifier set (programs are implicitly
//! rewritten to this form by inserting `⊥` annotations, §3.3). The two
//! qualifier-specific reduction rules are:
//!
//! ```text
//! ⟨s, R[(l₂ v)|l₁]⟩ → ⟨s, R[l₂ v]⟩    if l₂ ⊑ l₁   (assertion)
//! ⟨s, R[l₁ (l₂ v)]⟩ → ⟨s, R[l₁ v]⟩    if l₂ ⊑ l₁   (annotation)
//! ```
//!
//! When the side condition fails the configuration is **stuck** — and the
//! soundness theorem (Corollary 1) says well-qualified programs never get
//! stuck, which the test suite verifies empirically on random programs.

use std::fmt;

use qual_lattice::{QualSet, QualSpace};

use crate::ast::{Expr, ExprKind, Span};

/// A runtime value: a qualifier set and an unqualified shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    /// The value's qualifier annotation `l`.
    pub qual: QualSet,
    /// The underlying syntactic value.
    pub shape: VShape,
}

/// The unqualified syntactic values.
#[derive(Debug, Clone, PartialEq)]
pub enum VShape {
    /// An integer.
    Int(i64),
    /// The unit value.
    Unit,
    /// A store location.
    Loc(usize),
    /// An abstraction (substitution semantics: the body is closed by
    /// substitution, there is no environment).
    Closure(String, Expr),
    /// A pair of values.
    Pair(Box<Value>, Box<Value>),
}

impl Value {
    fn bottom(space: &QualSpace, shape: VShape) -> Value {
        Value {
            qual: space.bottom(),
            shape,
        }
    }

    /// Renders the value for messages.
    #[must_use]
    pub fn render(&self, space: &QualSpace) -> String {
        let q = space.render(self.qual);
        let q = if q.is_empty() { "∅".to_owned() } else { q };
        match &self.shape {
            VShape::Int(n) => format!("({q} {n})"),
            VShape::Unit => format!("({q} ())"),
            VShape::Loc(a) => format!("({q} loc{a})"),
            VShape::Closure(x, _) => format!("({q} \\{x}. ...)"),
            VShape::Pair(a, b) => {
                format!("({q} ({}, {}))", a.render(space), b.render(space))
            }
        }
    }
}

/// Why evaluation stopped without producing a value.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The step budget ran out (the program may diverge).
    FuelExhausted,
    /// The configuration is stuck: no reduction rule applies.
    ///
    /// For well-qualified programs this never happens (Corollary 1).
    Stuck {
        /// Why no rule applies.
        reason: String,
        /// The offending expression's source span.
        span: Span,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::FuelExhausted => f.write_str("evaluation fuel exhausted"),
            EvalError::Stuck { reason, span } => {
                write!(f, "stuck at bytes {}..{}: {reason}", span.lo, span.hi)
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A store mapping locations to qualified values.
#[derive(Debug, Default)]
pub struct Store {
    cells: Vec<Value>,
}

impl Store {
    /// An empty store.
    #[must_use]
    pub fn new() -> Store {
        Store::default()
    }

    /// Allocates a fresh location holding `v`.
    pub fn alloc(&mut self, v: Value) -> usize {
        self.cells.push(v);
        self.cells.len() - 1
    }

    /// The value at `a`, if allocated.
    #[must_use]
    pub fn get(&self, a: usize) -> Option<&Value> {
        self.cells.get(a)
    }

    /// Overwrites location `a`, returning whether it was allocated.
    pub fn set(&mut self, a: usize, v: Value) -> bool {
        match self.cells.get_mut(a) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// Number of allocated cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Evaluates a closed program with a step budget, giving every integer
/// literal the paper's default `⊥` annotation.
///
/// Returns the final qualified value and the store.
///
/// # Errors
///
/// [`EvalError::Stuck`] when no reduction rule applies (ill-typed or
/// qualifier-violating program); [`EvalError::FuelExhausted`] when the
/// budget runs out.
pub fn eval(
    expr: &Expr,
    space: &QualSpace,
    fuel: u64,
) -> Result<(Value, Store), EvalError> {
    eval_with(expr, space, &crate::rules::NoRules, fuel)
}

/// Like [`eval`], but literals receive the intrinsic qualifier declared
/// by `rules` (`QualifierRules::literal_qual`) — so the dynamic semantics
/// agrees with the static choice points (e.g. `0` is not `nonzero` under
/// [`crate::rules::NonzeroRules`]).
///
/// # Errors
///
/// Same as [`eval`].
pub fn eval_with(
    expr: &Expr,
    space: &QualSpace,
    rules: &dyn crate::rules::QualifierRules,
    fuel: u64,
) -> Result<(Value, Store), EvalError> {
    let mut m = Machine {
        space,
        rules,
        store: Store::new(),
        fuel,
    };
    let v = m.eval(expr)?;
    Ok((v, m.store))
}

struct Machine<'a> {
    space: &'a QualSpace,
    rules: &'a dyn crate::rules::QualifierRules,
    store: Store,
    fuel: u64,
}

impl Machine<'_> {
    fn tick(&mut self, span: Span) -> Result<(), EvalError> {
        let _ = span;
        if self.fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn stuck<T>(&self, span: Span, reason: impl Into<String>) -> Result<T, EvalError> {
        Err(EvalError::Stuck {
            reason: reason.into(),
            span,
        })
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, EvalError> {
        self.tick(e.span)?;
        match &e.kind {
            ExprKind::Var(x) => self.stuck(e.span, format!("free variable `{x}`")),
            ExprKind::Int(n) => Ok(Value {
                qual: self.rules.literal_qual(self.space, *n),
                shape: VShape::Int(*n),
            }),
            ExprKind::Unit => Ok(Value::bottom(self.space, VShape::Unit)),
            ExprKind::Loc(a) => Ok(Value::bottom(self.space, VShape::Loc(*a))),
            ExprKind::Lam(x, body) => Ok(Value::bottom(
                self.space,
                VShape::Closure(x.clone(), (**body).clone()),
            )),
            ExprKind::Annot(l, inner) => {
                // ⟨s, R[l₁ (l₂ v)]⟩ → ⟨s, R[l₁ v]⟩ when l₂ ⊑ l₁.
                let v = self.eval(inner)?;
                if self.space.le(v.qual, *l) {
                    Ok(Value {
                        qual: *l,
                        shape: v.shape,
                    })
                } else {
                    self.stuck(
                        e.span,
                        format!(
                            "annotation failed: {} ⋢ {}",
                            self.space.render(v.qual),
                            self.space.render(*l)
                        ),
                    )
                }
            }
            ExprKind::Assert(inner, l) => {
                // ⟨s, R[(l₂ v)|l₁]⟩ → ⟨s, R[l₂ v]⟩ when l₂ ⊑ l₁.
                let v = self.eval(inner)?;
                if self.space.le(v.qual, *l) {
                    Ok(v)
                } else {
                    self.stuck(
                        e.span,
                        format!(
                            "assertion failed: {} ⋢ {}",
                            self.space.render(v.qual),
                            self.space.render(*l)
                        ),
                    )
                }
            }
            ExprKind::App(f, a) => {
                let vf = self.eval(f)?;
                let va = self.eval(a)?;
                match vf.shape {
                    VShape::Closure(x, body) => {
                        let body = subst(&body, &x, &va);
                        self.eval(&body)
                    }
                    _ => self.stuck(f.span, "application of a non-function"),
                }
            }
            ExprKind::If(g, t, f) => {
                let vg = self.eval(g)?;
                match vg.shape {
                    VShape::Int(n) if n != 0 => self.eval(t),
                    VShape::Int(_) => self.eval(f),
                    _ => self.stuck(g.span, "non-integer conditional guard"),
                }
            }
            ExprKind::Let(x, rhs, body) => {
                let v = self.eval(rhs)?;
                let body = subst(body, x, &v);
                self.eval(&body)
            }
            ExprKind::Ref(inner) => {
                let v = self.eval(inner)?;
                let a = self.store.alloc(v);
                Ok(Value::bottom(self.space, VShape::Loc(a)))
            }
            ExprKind::Deref(inner) => {
                let v = self.eval(inner)?;
                match v.shape {
                    VShape::Loc(a) => match self.store.get(a) {
                        Some(stored) => Ok(stored.clone()),
                        None => self.stuck(e.span, "dangling location"),
                    },
                    _ => self.stuck(inner.span, "dereference of a non-reference"),
                }
            }
            ExprKind::Binop(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                match (va.shape, vb.shape) {
                    (VShape::Int(x), VShape::Int(y)) => {
                        let n = op.apply(x, y);
                        Ok(Value {
                            qual: self.rules.literal_qual(self.space, n),
                            shape: VShape::Int(n),
                        })
                    }
                    _ => self.stuck(e.span, "arithmetic on non-integers"),
                }
            }
            ExprKind::Pair(a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                Ok(Value::bottom(
                    self.space,
                    VShape::Pair(Box::new(va), Box::new(vb)),
                ))
            }
            ExprKind::Fst(inner) => {
                let v = self.eval(inner)?;
                match v.shape {
                    VShape::Pair(a, _) => Ok(*a),
                    _ => self.stuck(inner.span, "fst of a non-pair"),
                }
            }
            ExprKind::Snd(inner) => {
                let v = self.eval(inner)?;
                match v.shape {
                    VShape::Pair(_, b) => Ok(*b),
                    _ => self.stuck(inner.span, "snd of a non-pair"),
                }
            }
            ExprKind::Assign(lhs, rhs) => {
                let vl = self.eval(lhs)?;
                let vr = self.eval(rhs)?;
                match vl.shape {
                    VShape::Loc(a) => {
                        if !self.store.set(a, vr) {
                            return self.stuck(e.span, "assignment to dangling location");
                        }
                        Ok(Value::bottom(self.space, VShape::Unit))
                    }
                    _ => self.stuck(lhs.span, "assignment to a non-reference"),
                }
            }
        }
    }
}

/// Capture-avoiding substitution `e[x ↦ v]`.
///
/// Runtime values are embedded back into expression syntax as annotated
/// value forms (closures were already closed by earlier substitutions, so
/// only variables bound *inside* them can capture — those are renamed
/// implicitly by shadowing checks below).
fn subst(e: &Expr, x: &str, v: &Value) -> Expr {
    let kind = match &e.kind {
        ExprKind::Var(y) if y == x => return value_to_expr(v, e.span),
        ExprKind::Var(y) => ExprKind::Var(y.clone()),
        ExprKind::Int(n) => ExprKind::Int(*n),
        ExprKind::Unit => ExprKind::Unit,
        ExprKind::Loc(a) => ExprKind::Loc(*a),
        ExprKind::Lam(y, body) => {
            if y == x {
                ExprKind::Lam(y.clone(), body.clone()) // shadowed
            } else {
                ExprKind::Lam(y.clone(), Box::new(subst(body, x, v)))
            }
        }
        ExprKind::App(a, b) => ExprKind::App(
            Box::new(subst(a, x, v)),
            Box::new(subst(b, x, v)),
        ),
        ExprKind::If(a, b, c) => ExprKind::If(
            Box::new(subst(a, x, v)),
            Box::new(subst(b, x, v)),
            Box::new(subst(c, x, v)),
        ),
        ExprKind::Let(y, a, b) => {
            let a2 = Box::new(subst(a, x, v));
            if y == x {
                ExprKind::Let(y.clone(), a2, b.clone()) // shadowed in body
            } else {
                ExprKind::Let(y.clone(), a2, Box::new(subst(b, x, v)))
            }
        }
        ExprKind::Ref(a) => ExprKind::Ref(Box::new(subst(a, x, v))),
        ExprKind::Deref(a) => ExprKind::Deref(Box::new(subst(a, x, v))),
        ExprKind::Assign(a, b) => ExprKind::Assign(
            Box::new(subst(a, x, v)),
            Box::new(subst(b, x, v)),
        ),
        ExprKind::Pair(a, b) => ExprKind::Pair(
            Box::new(subst(a, x, v)),
            Box::new(subst(b, x, v)),
        ),
        ExprKind::Binop(op, a, b) => ExprKind::Binop(
            *op,
            Box::new(subst(a, x, v)),
            Box::new(subst(b, x, v)),
        ),
        ExprKind::Fst(a) => ExprKind::Fst(Box::new(subst(a, x, v))),
        ExprKind::Snd(a) => ExprKind::Snd(Box::new(subst(a, x, v))),
        ExprKind::Annot(l, a) => ExprKind::Annot(*l, Box::new(subst(a, x, v))),
        ExprKind::Assert(a, l) => ExprKind::Assert(Box::new(subst(a, x, v)), *l),
    };
    Expr {
        kind,
        span: e.span,
        id: e.id,
    }
}

/// Embeds a runtime value back into expression syntax as `l v`.
fn value_to_expr(v: &Value, span: Span) -> Expr {
    let inner = match &v.shape {
        VShape::Int(n) => ExprKind::Int(*n),
        VShape::Unit => ExprKind::Unit,
        VShape::Loc(a) => ExprKind::Loc(*a),
        VShape::Closure(x, body) => ExprKind::Lam(x.clone(), Box::new(body.clone())),
        VShape::Pair(a, b) => ExprKind::Pair(
            Box::new(value_to_expr(a, span)),
            Box::new(value_to_expr(b, span)),
        ),
    };
    Expr {
        kind: ExprKind::Annot(
            v.qual,
            Box::new(Expr {
                kind: inner,
                span,
                id: crate::ast::NodeId(u32::MAX),
            }),
        ),
        span,
        id: crate::ast::NodeId(u32::MAX),
    }
}

/// Convenience: are two closed programs observationally equal on ints?
/// (Used in tests.)
#[must_use]
pub fn eval_to_int(src: &str, space: &QualSpace, fuel: u64) -> Option<i64> {
    let e = crate::parser::parse(src, space).ok()?;
    match eval(&e, space, fuel) {
        Ok((
            Value {
                shape: VShape::Int(n),
                ..
            },
            _,
        )) => Some(n),
        _ => None,
    }
}

/// Counts assertion/annotation checks that would be needed dynamically —
/// a small utility used by examples to contrast static checking with
/// dynamic checking (Purify/assert-style, §1).
#[must_use]
pub fn dynamic_check_count(e: &Expr) -> usize {
    match &e.kind {
        ExprKind::Annot(_, a) | ExprKind::Assert(a, _) => 1 + dynamic_check_count(a),
        ExprKind::Lam(_, a) | ExprKind::Ref(a) | ExprKind::Deref(a) => dynamic_check_count(a),
        ExprKind::App(a, b)
        | ExprKind::Assign(a, b)
        | ExprKind::Let(_, a, b)
        | ExprKind::Pair(a, b)
        | ExprKind::Binop(_, a, b) => dynamic_check_count(a) + dynamic_check_count(b),
        ExprKind::Fst(a) | ExprKind::Snd(a) => dynamic_check_count(a),
        ExprKind::If(a, b, c) => {
            dynamic_check_count(a) + dynamic_check_count(b) + dynamic_check_count(c)
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn space() -> QualSpace {
        QualSpace::figure2()
    }

    fn run(src: &str) -> Result<Value, EvalError> {
        let e = parse(src, &space()).unwrap();
        eval(&e, &space(), 100_000).map(|(v, _)| v)
    }

    fn run_nonzero(src: &str) -> Result<Value, EvalError> {
        let e = parse(src, &space()).unwrap();
        eval_with(&e, &space(), &crate::rules::NonzeroRules, 100_000).map(|(v, _)| v)
    }

    #[test]
    fn literals_and_arithmetic_free_flow() {
        assert_eq!(run("42").unwrap().shape, VShape::Int(42));
        assert_eq!(run("()").unwrap().shape, VShape::Unit);
        assert_eq!(run("(\\x. x) 7").unwrap().shape, VShape::Int(7));
    }

    #[test]
    fn references_round_trip() {
        assert_eq!(run("!(ref 3)").unwrap().shape, VShape::Int(3));
        assert_eq!(
            run("let r = ref 1 in let u = r := 9 in !r ni ni")
                .unwrap()
                .shape,
            VShape::Int(9)
        );
    }

    #[test]
    fn conditionals_use_c_truthiness() {
        assert_eq!(run("if 5 then 1 else 2 fi").unwrap().shape, VShape::Int(1));
        assert_eq!(run("if 0 then 1 else 2 fi").unwrap().shape, VShape::Int(2));
    }

    #[test]
    fn annotation_raises_qualifier() {
        let v = run("{nonzero} 37").unwrap();
        let s = space();
        assert!(v.qual.has(&s, s.id("nonzero").unwrap()));
    }

    #[test]
    fn assertion_passes_when_below() {
        let v = run("({nonzero} 37)|{nonzero}").unwrap();
        assert_eq!(v.shape, VShape::Int(37));
    }

    #[test]
    fn assertion_fails_when_above() {
        // Under NonzeroRules, 0's intrinsic qualifier has `nonzero`
        // *absent*, so asserting `⊑ {nonzero}` (whose nonzero coordinate
        // is at ⊥, i.e. present) gets stuck.
        let err = run_nonzero("0|{nonzero}").unwrap_err();
        assert!(matches!(err, EvalError::Stuck { .. }), "{err}");
        // Whereas a non-zero literal is nonzero by default (⊥ carries the
        // negative qualifier).
        assert!(run_nonzero("37|{nonzero}").is_ok());
    }

    #[test]
    fn paper_unsound_example_gets_stuck_dynamically() {
        // The §2.4 example: after y := 0 the assertion on !x fails.
        let err = run_nonzero(
            "let x = ref {nonzero} 37 in \
             let y = x in \
             let u = y := 0 in \
             (!x)|{nonzero} ni ni ni",
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::Stuck { .. }), "{err}");
    }

    #[test]
    fn divergence_exhausts_fuel() {
        // ω ω via self-application is ill-typed, but the interpreter is
        // untyped; build divergence with a ref-stored function instead.
        let src = "let f = ref (\\x. x) in \
                   let u = f := (\\x. (!f) x) in \
                   (!f) 1 ni ni";
        let e = parse(src, &space()).unwrap();
        // Keep the budget modest: the evaluator recurses per step, so
        // deeply diverging programs need stack proportional to fuel.
        let err = eval(&e, &space(), 1_000).unwrap_err();
        assert_eq!(err, EvalError::FuelExhausted);
    }

    #[test]
    fn shadowing_is_respected() {
        assert_eq!(
            run("let x = 1 in let x = 2 in x ni ni").unwrap().shape,
            VShape::Int(2)
        );
        assert_eq!(
            run("(\\x. (\\x. x) 9) 1").unwrap().shape,
            VShape::Int(9)
        );
    }

    #[test]
    fn annotation_moves_monotonically_up() {
        let s = space();
        // Raising to {const nonzero} from {nonzero} keeps both.
        let v = run("{const nonzero} {nonzero} 5").unwrap();
        assert!(v.qual.has(&s, s.id("const").unwrap()));
        assert!(v.qual.has(&s, s.id("nonzero").unwrap()));
        // Rule (Annot) sets the top-level qualifier to exactly l — here
        // `{const}` (nonzero absent) is *above* `{nonzero}`, because
        // removing a negative qualifier moves up the lattice.
        let v = run("{const} {nonzero} 5").unwrap();
        assert!(v.qual.has(&s, s.id("const").unwrap()));
        assert!(!v.qual.has(&s, s.id("nonzero").unwrap()));
        // Moving *down* (dropping const) gets stuck instead.
        let err = run("{nonzero} {const nonzero} 5").unwrap_err();
        assert!(matches!(err, EvalError::Stuck { .. }));
    }

    #[test]
    fn stuck_on_type_errors() {
        assert!(matches!(run("1 2"), Err(EvalError::Stuck { .. })));
        assert!(matches!(run("!5"), Err(EvalError::Stuck { .. })));
        assert!(matches!(run("5 := 1"), Err(EvalError::Stuck { .. })));
        assert!(matches!(
            run("if () then 1 else 2 fi"),
            Err(EvalError::Stuck { .. })
        ));
        assert!(matches!(run("y"), Err(EvalError::Stuck { .. })));
    }

    #[test]
    fn aliased_refs_share_the_cell() {
        // Two names for one ref observe each other's writes.
        assert_eq!(
            run("let x = ref 1 in \
                 let y = x in \
                 let u = y := 42 in !x ni ni ni")
            .unwrap()
            .shape,
            VShape::Int(42)
        );
    }

    #[test]
    fn closures_capture_refs_by_reference() {
        assert_eq!(
            run("let r = ref 0 in \
                 let bump = \\u. r := 7 in \
                 let v = bump () in !r ni ni ni")
            .unwrap()
            .shape,
            VShape::Int(7)
        );
    }

    #[test]
    fn store_grows_per_allocation() {
        let e = parse("let a = ref 1 in let b = ref 2 in !a ni ni", &space()).unwrap();
        let (_, store) = eval(&e, &space(), 1_000).unwrap();
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        assert!(store.get(0).is_some());
        assert!(store.get(9).is_none());
    }

    #[test]
    fn values_render() {
        let s = space();
        let v = run("{nonzero} 3").unwrap();
        assert_eq!(v.render(&s), "(nonzero 3)");
    }

    #[test]
    fn dynamic_check_count_counts_syntax() {
        let e = parse("({nonzero} 1)|{nonzero}", &space()).unwrap();
        assert_eq!(dynamic_check_count(&e), 2);
    }
}
