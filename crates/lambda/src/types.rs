//! Type representations.
//!
//! Two layers, mirroring the paper's factorization (§1, §3.1):
//!
//! * **Standard types** `τ ::= α | int | unit | τ → τ | ref(τ)` live in a
//!   [`TyArena`] and are solved by unification ([`crate::unify`]).
//! * **Qualified types** `ρ ::= Q τ` ([`QTy`], Figure 3 extended with
//!   `ref`/`unit`) decorate every constructor with a qualifier term
//!   (`Q ::= κ | l`) and live in a [`QTyArena`]. They are produced by the
//!   `sp` spread operator after standard typing succeeds.

use qual_lattice::QualSpace;
use qual_solve::{Qual, QVar, VarSupply};

/// Index of a standard type in its [`TyArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TyId(u32);

impl TyId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A standard type constructor application or variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// A unification variable; `Var(v)` may be bound in the arena.
    Var(u32),
    /// The integer type.
    Int,
    /// The unit type.
    Unit,
    /// Function type `τ₁ → τ₂`.
    Fun(TyId, TyId),
    /// Updateable reference `ref(τ)`.
    Ref(TyId),
    /// Pair `τ₁ × τ₂` (a second constructor demonstrating §2.1's generic
    /// construction).
    Pair(TyId, TyId),
}

/// Arena of standard types plus the unification substitution.
#[derive(Debug, Default)]
pub struct TyArena {
    nodes: Vec<Ty>,
    /// `bindings[v]` is the type bound to unification variable `v`.
    bindings: Vec<Option<TyId>>,
}

impl TyArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> TyArena {
        TyArena::default()
    }

    /// Interns a type node.
    pub fn mk(&mut self, ty: Ty) -> TyId {
        let id = TyId(u32::try_from(self.nodes.len()).expect("type arena overflow"));
        self.nodes.push(ty);
        id
    }

    /// Allocates a fresh unification variable.
    pub fn fresh_var(&mut self) -> TyId {
        let v = u32::try_from(self.bindings.len()).expect("type variable overflow");
        self.bindings.push(None);
        self.mk(Ty::Var(v))
    }

    /// The node stored at `id` (without resolving variables).
    #[must_use]
    pub fn get(&self, id: TyId) -> Ty {
        self.nodes[id.index()]
    }

    /// Follows variable bindings until reaching an unbound variable or a
    /// constructor (path-compression-free resolve; trees are small).
    #[must_use]
    pub fn resolve(&self, mut id: TyId) -> TyId {
        loop {
            match self.get(id) {
                Ty::Var(v) => match self.bindings[v as usize] {
                    Some(next) => id = next,
                    None => return id,
                },
                _ => return id,
            }
        }
    }

    pub(crate) fn bind(&mut self, var: u32, to: TyId) {
        debug_assert!(self.bindings[var as usize].is_none(), "rebinding variable");
        self.bindings[var as usize] = Some(to);
    }

    /// Whether (resolved) `var` occurs anywhere inside (resolved) `ty` —
    /// the occurs check.
    #[must_use]
    pub fn occurs(&self, var: u32, ty: TyId) -> bool {
        let r = self.resolve(ty);
        match self.get(r) {
            Ty::Var(v) => v == var,
            Ty::Int | Ty::Unit => false,
            Ty::Fun(a, b) | Ty::Pair(a, b) => self.occurs(var, a) || self.occurs(var, b),
            Ty::Ref(t) => self.occurs(var, t),
        }
    }

    /// Renders the (resolved) type for error messages.
    #[must_use]
    pub fn render(&self, id: TyId) -> String {
        let r = self.resolve(id);
        match self.get(r) {
            Ty::Var(v) => format!("α{v}"),
            Ty::Int => "int".to_owned(),
            Ty::Unit => "unit".to_owned(),
            Ty::Fun(a, b) => format!("({} -> {})", self.render(a), self.render(b)),
            Ty::Pair(a, b) => format!("({} * {})", self.render(a), self.render(b)),
            Ty::Ref(t) => format!("ref({})", self.render(t)),
        }
    }
}

/// Index of a qualified type in its [`QTyArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QTyId(u32);

impl QTyId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape (standard-type skeleton) of a qualified type node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QShape {
    /// `Q int`.
    Int,
    /// `Q unit`.
    Unit,
    /// `Q (ρ₁ → ρ₂)`.
    Fun(QTyId, QTyId),
    /// `Q ref(ρ)`.
    Ref(QTyId),
    /// `Q (ρ₁ × ρ₂)`.
    Pair(QTyId, QTyId),
}

/// A qualified type node `Q shape`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QTy {
    /// The top-level qualifier term.
    pub qual: Qual,
    /// The constructor and children.
    pub shape: QShape,
}

/// Arena of qualified types.
#[derive(Debug, Default)]
pub struct QTyArena {
    nodes: Vec<QTy>,
}

impl QTyArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> QTyArena {
        QTyArena::default()
    }

    /// Interns a qualified type node.
    pub fn mk(&mut self, qual: Qual, shape: QShape) -> QTyId {
        let id = QTyId(u32::try_from(self.nodes.len()).expect("qualified type arena overflow"));
        self.nodes.push(QTy { qual, shape });
        id
    }

    /// The node at `id`.
    #[must_use]
    pub fn get(&self, id: QTyId) -> QTy {
        self.nodes[id.index()]
    }

    /// Number of nodes interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all interned nodes.
    pub fn iter(&self) -> impl Iterator<Item = (QTyId, QTy)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (QTyId(i as u32), *n))
    }

    /// The paper's `sp` operator: rewrites a standard type into a
    /// qualified type with a fresh qualifier variable on every
    /// constructor. Unbound standard type variables are defaulted to
    /// `int` (the program never constrained them, so any shape works);
    /// the count of such defaults is added to `defaulted`.
    pub fn spread(
        &mut self,
        tys: &TyArena,
        ty: TyId,
        supply: &mut VarSupply,
        defaulted: &mut usize,
    ) -> QTyId {
        let r = tys.resolve(ty);
        let shape = match tys.get(r) {
            Ty::Var(_) => {
                *defaulted += 1;
                QShape::Int
            }
            Ty::Int => QShape::Int,
            Ty::Unit => QShape::Unit,
            Ty::Fun(a, b) => {
                let qa = self.spread(tys, a, supply, defaulted);
                let qb = self.spread(tys, b, supply, defaulted);
                QShape::Fun(qa, qb)
            }
            Ty::Ref(t) => {
                let qt = self.spread(tys, t, supply, defaulted);
                QShape::Ref(qt)
            }
            Ty::Pair(a, b) => {
                let qa = self.spread(tys, a, supply, defaulted);
                let qb = self.spread(tys, b, supply, defaulted);
                QShape::Pair(qa, qb)
            }
        };
        self.mk(Qual::Var(supply.fresh()), shape)
    }

    /// Deep-copies `id`, applying `subst` to every qualifier variable —
    /// used by scheme instantiation (rule (Var′)).
    pub fn copy_with(&mut self, id: QTyId, subst: &dyn Fn(QVar) -> QVar) -> QTyId {
        let node = self.get(id);
        let shape = match node.shape {
            QShape::Int => QShape::Int,
            QShape::Unit => QShape::Unit,
            QShape::Fun(a, b) => {
                let ca = self.copy_with(a, subst);
                let cb = self.copy_with(b, subst);
                QShape::Fun(ca, cb)
            }
            QShape::Ref(t) => {
                let ct = self.copy_with(t, subst);
                QShape::Ref(ct)
            }
            QShape::Pair(a, b) => {
                let ca = self.copy_with(a, subst);
                let cb = self.copy_with(b, subst);
                QShape::Pair(ca, cb)
            }
        };
        let qual = match node.qual {
            Qual::Var(v) => Qual::Var(subst(v)),
            Qual::Const(c) => Qual::Const(c),
        };
        self.mk(qual, shape)
    }

    /// Collects every qualifier variable inside `id` (preorder, may
    /// contain duplicates if the type shares nodes).
    pub fn vars_of(&self, id: QTyId, out: &mut Vec<QVar>) {
        let node = self.get(id);
        if let Qual::Var(v) = node.qual {
            out.push(v);
        }
        match node.shape {
            QShape::Int | QShape::Unit => {}
            QShape::Fun(a, b) | QShape::Pair(a, b) => {
                self.vars_of(a, out);
                self.vars_of(b, out);
            }
            QShape::Ref(t) => self.vars_of(t, out),
        }
    }

    /// The `strip` direction of Observation 1: rebuilds the standard type
    /// underlying `id` into `tys`.
    pub fn strip(&self, id: QTyId, tys: &mut TyArena) -> TyId {
        let node = self.get(id);
        match node.shape {
            QShape::Int => tys.mk(Ty::Int),
            QShape::Unit => tys.mk(Ty::Unit),
            QShape::Fun(a, b) => {
                let ta = self.strip(a, tys);
                let tb = self.strip(b, tys);
                tys.mk(Ty::Fun(ta, tb))
            }
            QShape::Ref(t) => {
                let tt = self.strip(t, tys);
                tys.mk(Ty::Ref(tt))
            }
            QShape::Pair(a, b) => {
                let ta = self.strip(a, tys);
                let tb = self.strip(b, tys);
                tys.mk(Ty::Pair(ta, tb))
            }
        }
    }

    /// Renders the qualified type, naming constants via `space`.
    #[must_use]
    pub fn render(&self, id: QTyId, space: &QualSpace) -> String {
        let node = self.get(id);
        let q = node.qual.render(space);
        match node.shape {
            QShape::Int => format!("{q} int"),
            QShape::Unit => format!("{q} unit"),
            QShape::Fun(a, b) => {
                format!("{q} ({} -> {})", self.render(a, space), self.render(b, space))
            }
            QShape::Ref(t) => format!("{q} ref({})", self.render(t, space)),
            QShape::Pair(a, b) => format!(
                "{q} ({} * {})",
                self.render(a, space),
                self.render(b, space)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unification_arena_basics() {
        let mut tys = TyArena::new();
        let a = tys.fresh_var();
        let int = tys.mk(Ty::Int);
        assert_eq!(tys.resolve(a), a);
        if let Ty::Var(v) = tys.get(a) {
            tys.bind(v, int);
        }
        assert_eq!(tys.resolve(a), int);
        assert_eq!(tys.render(a), "int");
    }

    #[test]
    fn occurs_check_detects_cycles() {
        let mut tys = TyArena::new();
        let a = tys.fresh_var();
        let f = tys.mk(Ty::Fun(a, a));
        if let Ty::Var(v) = tys.get(a) {
            assert!(tys.occurs(v, f));
            let other = tys.fresh_var();
            assert!(!tys.occurs(v, other));
        }
    }

    #[test]
    fn spread_decorates_every_level() {
        let mut tys = TyArena::new();
        let int = tys.mk(Ty::Int);
        let r = tys.mk(Ty::Ref(int));
        let f = tys.mk(Ty::Fun(r, int));
        let mut quals = QTyArena::new();
        let mut supply = VarSupply::new();
        let mut defaulted = 0;
        let q = quals.spread(&tys, f, &mut supply, &mut defaulted);
        assert_eq!(defaulted, 0);
        // int, ref(int), int, fun = 4 fresh qualifier variables.
        assert_eq!(supply.count(), 4);
        let mut vars = Vec::new();
        quals.vars_of(q, &mut vars);
        assert_eq!(vars.len(), 4);
        let space = QualSpace::const_only();
        assert!(quals.render(q, &space).contains("ref"));
    }

    #[test]
    fn spread_defaults_unbound_vars() {
        let mut tys = TyArena::new();
        let a = tys.fresh_var();
        let mut quals = QTyArena::new();
        let mut supply = VarSupply::new();
        let mut defaulted = 0;
        let q = quals.spread(&tys, a, &mut supply, &mut defaulted);
        assert_eq!(defaulted, 1);
        assert!(matches!(quals.get(q).shape, QShape::Int));
    }

    #[test]
    fn strip_spread_inverts_shape() {
        // strip(sp(τ)) has the same structure as τ (Observation 1).
        let mut tys = TyArena::new();
        let int = tys.mk(Ty::Int);
        let r = tys.mk(Ty::Ref(int));
        let f = tys.mk(Ty::Fun(r, int));
        let mut quals = QTyArena::new();
        let mut supply = VarSupply::new();
        let mut defaulted = 0;
        let q = quals.spread(&tys, f, &mut supply, &mut defaulted);
        let back = quals.strip(q, &mut tys);
        assert_eq!(tys.render(back), tys.render(f));
    }

    #[test]
    fn copy_with_renames_vars() {
        let mut quals = QTyArena::new();
        let mut supply = VarSupply::new();
        let v = supply.fresh();
        let inner = quals.mk(Qual::Var(v), QShape::Int);
        let outer = quals.mk(Qual::Var(v), QShape::Ref(inner));
        let w = supply.fresh();
        let copy = quals.copy_with(outer, &|x| if x == v { w } else { x });
        let mut vars = Vec::new();
        quals.vars_of(copy, &mut vars);
        assert_eq!(vars, vec![w, w]);
    }
}
