//! Recursive-descent parser for the core language.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr    ::= assign
//! assign  ::= assert (':=' assign)?             (right associative)
//! assert  ::= add ('|' qualset)*
//! add     ::= mul ('+' mul)*
//! mul     ::= app ('*' app)*
//! app     ::= unary unary*
//! unary   ::= 'ref' unary | '!' unary | 'fst' unary | 'snd' unary
//!           | qualset unary | keyword | atom
//! keyword ::= '\' IDENT '.' expr               (extends right)
//!           | 'let' IDENT '=' expr 'in' expr 'ni'
//!           | 'if' expr 'then' expr 'else' expr 'fi'
//! atom    ::= IDENT | INT | '(' ')' | '(' expr ')' | '(' expr ',' expr ')'
//! qualset ::= '{' item* '}'
//! item    ::= IDENT | '~' IDENT | 'top' | 'bot'
//! ```
//!
//! The keyword forms are self-delimiting, so they may appear directly in
//! operand position (`f \x. x`, `(let r = ref 1 in r ni) := 2`).
//!
//! A qualifier set is evaluated left to right starting from the space's
//! *no-qualifier* element: a bare name makes that qualifier present, `~name`
//! makes it absent, and `top`/`bot` reset to the lattice extremes. The
//! paper's `¬const` upper bound is written `{top ~const}`.

use qual_lattice::{QualSet, QualSpace};

use crate::ast::{Expr, ExprKind, Span};
use crate::error::ParseError;
use crate::lexer::{lex, SpannedTok, Tok};

/// Parses a complete program against the given qualifier space.
///
/// Node ids are assigned densely; the returned tree is ready for
/// inference.
///
/// # Errors
///
/// Returns [`ParseError`] on any syntax error, including unknown
/// qualifier names.
pub fn parse(src: &str, space: &QualSpace) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        space,
        depth: 0,
    };
    let mut e = p.expr()?;
    p.expect(&Tok::Eof)?;
    e.renumber();
    Ok(e)
}

struct Parser<'a> {
    toks: Vec<SpannedTok>,
    pos: usize,
    space: &'a QualSpace,
    /// Expression-nesting depth guard (pathological inputs must error,
    /// not overflow the stack).
    depth: u32,
}

/// Maximum expression nesting depth. Each level of nesting costs ~8
/// parser frames (several KiB each in debug builds); 128 keeps the
/// parser safe on a 2 MiB test-thread stack. Note that `let`-chains
/// nest, so programs are limited to ~120 sequential bindings — scale
/// wide (operator chains parse iteratively), not deep.
const MAX_DEPTH: u32 = 128;

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> SpannedTok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<Span, ParseError> {
        if self.peek() == want {
            Ok(self.bump().span)
        } else {
            Err(ParseError::new(
                self.peek_span(),
                format!("expected {want}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.bump().span;
                Ok((s, sp))
            }
            other => Err(ParseError::new(
                self.peek_span(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn node(kind: ExprKind, span: Span) -> Expr {
        Expr {
            kind,
            span,
            id: crate::ast::NodeId(0),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assign()
    }

    /// The self-delimiting keyword forms, usable at any operand position:
    /// `\\x.e` (extends right), `let … in … ni`, `if … then … else … fi`.
    fn keyword_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Backslash => {
                let lo = self.bump().span;
                let (x, _) = self.ident()?;
                self.expect(&Tok::Dot)?;
                let body = self.expr()?;
                let span = lo.to(body.span);
                Ok(Self::node(ExprKind::Lam(x, Box::new(body)), span))
            }
            Tok::Let => {
                let lo = self.bump().span;
                let (x, _) = self.ident()?;
                self.expect(&Tok::Eq)?;
                let rhs = self.expr()?;
                self.expect(&Tok::In)?;
                let body = self.expr()?;
                let hi = self.expect(&Tok::Ni)?;
                Ok(Self::node(
                    ExprKind::Let(x, Box::new(rhs), Box::new(body)),
                    lo.to(hi),
                ))
            }
            Tok::If => {
                let lo = self.bump().span;
                let guard = self.expr()?;
                self.expect(&Tok::Then)?;
                let thn = self.expr()?;
                self.expect(&Tok::Else)?;
                let els = self.expr()?;
                let hi = self.expect(&Tok::Fi)?;
                Ok(Self::node(
                    ExprKind::If(Box::new(guard), Box::new(thn), Box::new(els)),
                    lo.to(hi),
                ))
            }
            other => Err(ParseError::new(
                self.peek_span(),
                format!("expected expression, found {other}"),
            )),
        }
    }

    fn assign(&mut self) -> Result<Expr, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(ParseError::new(
                self.peek_span(),
                "expression nesting too deep".to_owned(),
            ));
        }
        self.depth += 1;
        let r = self.assign_inner();
        self.depth -= 1;
        r
    }

    fn assign_inner(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.assert()?;
        if self.peek() == &Tok::Assign {
            self.bump();
            let rhs = self.assign()?;
            let span = lhs.span.to(rhs.span);
            Ok(Self::node(
                ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
                span,
            ))
        } else {
            Ok(lhs)
        }
    }

    fn assert(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        while self.peek() == &Tok::Pipe {
            self.bump();
            let (set, hi) = self.qualset()?;
            let span = e.span.to(hi);
            e = Self::node(ExprKind::Assert(Box::new(e), set), span);
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        while self.peek() == &Tok::Plus {
            self.bump();
            let rhs = self.multiplicative()?;
            let span = e.span.to(rhs.span);
            e = Self::node(
                ExprKind::Binop(crate::ast::ArithOp::Add, Box::new(e), Box::new(rhs)),
                span,
            );
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.app()?;
        while self.peek() == &Tok::Star {
            self.bump();
            let rhs = self.app()?;
            let span = e.span.to(rhs.span);
            e = Self::node(
                ExprKind::Binop(crate::ast::ArithOp::Mul, Box::new(e), Box::new(rhs)),
                span,
            );
        }
        Ok(e)
    }

    fn app(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        while self.starts_unary() {
            let arg = self.unary()?;
            let span = e.span.to(arg.span);
            e = Self::node(ExprKind::App(Box::new(e), Box::new(arg)), span);
        }
        Ok(e)
    }

    fn starts_unary(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Ident(_)
                | Tok::Int(_)
                | Tok::LParen
                | Tok::Ref
                | Tok::Bang
                | Tok::LBrace
                | Tok::Backslash
                | Tok::Let
                | Tok::If
                | Tok::Fst
                | Tok::Snd
        )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Ref => {
                let lo = self.bump().span;
                let e = self.unary()?;
                let span = lo.to(e.span);
                Ok(Self::node(ExprKind::Ref(Box::new(e)), span))
            }
            Tok::Bang => {
                let lo = self.bump().span;
                let e = self.unary()?;
                let span = lo.to(e.span);
                Ok(Self::node(ExprKind::Deref(Box::new(e)), span))
            }
            Tok::Fst => {
                let lo = self.bump().span;
                let e = self.unary()?;
                let span = lo.to(e.span);
                Ok(Self::node(ExprKind::Fst(Box::new(e)), span))
            }
            Tok::Snd => {
                let lo = self.bump().span;
                let e = self.unary()?;
                let span = lo.to(e.span);
                Ok(Self::node(ExprKind::Snd(Box::new(e)), span))
            }
            Tok::LBrace => {
                let (set, lo) = self.qualset()?;
                let e = self.unary()?;
                let span = lo.to(e.span);
                Ok(Self::node(ExprKind::Annot(set, Box::new(e)), span))
            }
            // `\x.e`, `let … ni` and `if … fi` are self-delimiting, so
            // they can appear directly in operand position.
            Tok::Backslash | Tok::Let | Tok::If => self.keyword_expr(),
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Ident(x) => {
                let sp = self.bump().span;
                Ok(Self::node(ExprKind::Var(x), sp))
            }
            Tok::Int(n) => {
                let sp = self.bump().span;
                Ok(Self::node(ExprKind::Int(n), sp))
            }
            Tok::LParen => {
                let lo = self.bump().span;
                if self.peek() == &Tok::RParen {
                    let hi = self.bump().span;
                    return Ok(Self::node(ExprKind::Unit, lo.to(hi)));
                }
                let mut e = self.expr()?;
                if self.peek() == &Tok::Comma {
                    self.bump();
                    let snd = self.expr()?;
                    let hi = self.expect(&Tok::RParen)?;
                    return Ok(Self::node(
                        ExprKind::Pair(Box::new(e), Box::new(snd)),
                        lo.to(hi),
                    ));
                }
                let hi = self.expect(&Tok::RParen)?;
                e.span = lo.to(hi);
                Ok(e)
            }
            other => Err(ParseError::new(
                self.peek_span(),
                format!("expected expression, found {other}"),
            )),
        }
    }

    /// Parses `{ item* }`, returning the element and the closing span.
    fn qualset(&mut self) -> Result<(QualSet, Span), ParseError> {
        let lo = self.expect(&Tok::LBrace)?;
        let mut set = self.space.none();
        loop {
            match self.peek().clone() {
                Tok::RBrace => {
                    let hi = self.bump().span;
                    return Ok((set, lo.to(hi)));
                }
                Tok::Tilde => {
                    self.bump();
                    let (name, sp) = self.ident()?;
                    let id = self.space.id(&name).ok_or_else(|| {
                        ParseError::new(sp, format!("unknown qualifier `{name}`"))
                    })?;
                    set = self.space.with_absent(set, id);
                }
                Tok::Ident(name) => {
                    let sp = self.bump().span;
                    match name.as_str() {
                        "top" => set = self.space.top(),
                        "bot" => set = self.space.bottom(),
                        _ => {
                            let id = self.space.id(&name).ok_or_else(|| {
                                ParseError::new(sp, format!("unknown qualifier `{name}`"))
                            })?;
                            set = self.space.with_present(set, id);
                        }
                    }
                }
                other => {
                    return Err(ParseError::new(
                        self.peek_span(),
                        format!("expected qualifier name or `}}`, found {other}"),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ExprKind as K;

    fn p(src: &str) -> Expr {
        parse(src, &QualSpace::figure2()).unwrap()
    }

    #[test]
    fn parses_paper_nonzero_example() {
        // Lines 1-5 of the §2.4 unsoundness example.
        let e = p("let x = ref {nonzero} 37 in \
                   let y = x in \
                   y := 0 ni ni");
        match &e.kind {
            K::Let(x, rhs, _) => {
                assert_eq!(x, "x");
                assert!(matches!(rhs.kind, K::Ref(_)));
            }
            _ => panic!("expected let"),
        }
    }

    #[test]
    fn application_is_left_associative() {
        let e = p("f x y");
        match &e.kind {
            K::App(fx, y) => {
                assert!(matches!(y.kind, K::Var(_)));
                assert!(matches!(fx.kind, K::App(..)));
            }
            _ => panic!("expected app"),
        }
    }

    #[test]
    fn assignment_is_right_associative_and_loose() {
        let e = p("x := !y");
        match &e.kind {
            K::Assign(l, r) => {
                assert!(matches!(l.kind, K::Var(_)));
                assert!(matches!(r.kind, K::Deref(_)));
            }
            _ => panic!("expected assign"),
        }
    }

    #[test]
    fn assertion_binds_tighter_than_assign() {
        let e = p("x|{top ~const} := 0");
        match &e.kind {
            K::Assign(l, _) => assert!(matches!(l.kind, K::Assert(..))),
            _ => panic!("expected assign"),
        }
    }

    #[test]
    fn qualset_semantics() {
        let space = QualSpace::figure2();
        let e = parse("{top ~const} 1", &space).unwrap();
        match e.kind {
            K::Annot(set, _) => {
                assert_eq!(set, space.not_q(space.id("const").unwrap()));
            }
            _ => panic!("expected annot"),
        }
        let e = parse("{nonzero} 1", &space).unwrap();
        match e.kind {
            K::Annot(set, _) => {
                assert!(set.has(&space, space.id("nonzero").unwrap()));
                assert!(!set.has(&space, space.id("const").unwrap()));
            }
            _ => panic!("expected annot"),
        }
    }

    #[test]
    fn unit_and_parens() {
        assert!(matches!(p("()").kind, K::Unit));
        assert!(matches!(p("(1)").kind, K::Int(1)));
    }

    #[test]
    fn lambda_in_argument_position() {
        let e = p("f \\x. x");
        assert!(matches!(e.kind, K::App(..)));
    }

    #[test]
    fn errors_are_located() {
        let err = parse("let x = ", &QualSpace::figure2()).unwrap_err();
        assert!(err.message.contains("expected expression"));
        let err = parse("{bogus} 1", &QualSpace::figure2()).unwrap_err();
        assert!(err.message.contains("unknown qualifier `bogus`"));
        let err = parse("(1", &QualSpace::figure2()).unwrap_err();
        assert!(err.message.contains("expected `)`"));
        let err = parse("1 2 )", &QualSpace::figure2()).unwrap_err();
        assert!(err.message.contains("expected end of input"));
    }

    #[test]
    fn node_ids_are_unique() {
        let e = p("let id = \\x. x in id 1 ni");
        let mut ids = Vec::new();
        fn collect(e: &Expr, out: &mut Vec<u32>) {
            out.push(e.id.0);
            match &e.kind {
                K::Lam(_, b) | K::Ref(b) | K::Deref(b) | K::Annot(_, b) | K::Assert(b, _) => {
                    collect(b, out)
                }
                K::App(a, b) | K::Assign(a, b) | K::Let(_, a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
                K::If(a, b, c) => {
                    collect(a, out);
                    collect(b, out);
                    collect(c, out);
                }
                _ => {}
            }
        }
        collect(&e, &mut ids);
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn render_parse_round_trip() {
        let space = QualSpace::figure2();
        for src in [
            "let x = ref {nonzero} 37 in (!x)|{nonzero} ni",
            "(\\x. x) 1",
            "if 1 then () else () fi",
            "x := 2",
        ] {
            let e = parse(src, &space).unwrap();
            let rendered = e.render(&space);
            let e2 = parse(&rendered, &space).unwrap();
            assert_eq!(e.strip().render(&space), e2.strip().render(&space));
        }
    }
}
