//! The declarative checking system of Figure 4, run over *ground*
//! qualified types (all qualifier variables replaced by the least
//! solution).
//!
//! The paper presents type *checking* rules (Figure 4) and separately
//! derives the *inference* system (§3.1). This module closes the loop:
//! after inference solves the constraints, every syntax-directed rule's
//! side conditions are re-verified on the solved types using the ground
//! subtyping relation. Agreement between the two paths is a strong
//! correctness check on the constraint decomposition, and the property
//! tests exercise it on random programs.

use qual_lattice::{QualSet, QualSpace};
use qual_solve::{ConstraintSet, Provenance, Qual, Solution};

use crate::ast::{Expr, ExprKind};
use crate::infer::Outcome;
use crate::rules::QualifierRules;
use crate::types::{QShape, QTyArena, QTyId};

/// A ground qualified type: every level carries a concrete lattice
/// element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GTy {
    /// `l int`.
    Int(QualSet),
    /// `l unit`.
    Unit(QualSet),
    /// `l (ρ₁ → ρ₂)`.
    Fun(QualSet, Box<GTy>, Box<GTy>),
    /// `l ref(ρ)`.
    Ref(QualSet, Box<GTy>),
    /// `l (ρ₁ × ρ₂)`.
    Pair(QualSet, Box<GTy>, Box<GTy>),
}

impl GTy {
    /// The top-level qualifier.
    #[must_use]
    pub fn qual(&self) -> QualSet {
        match self {
            GTy::Int(q) | GTy::Unit(q) | GTy::Fun(q, ..) | GTy::Ref(q, _) | GTy::Pair(q, ..) => {
                *q
            }
        }
    }

    /// Renders the type with `space` naming the qualifiers.
    #[must_use]
    pub fn render(&self, space: &QualSpace) -> String {
        let q = |s: QualSet| {
            let r = space.render(s);
            if r.is_empty() {
                "∅".to_owned()
            } else {
                r
            }
        };
        match self {
            GTy::Int(l) => format!("{} int", q(*l)),
            GTy::Unit(l) => format!("{} unit", q(*l)),
            GTy::Fun(l, a, b) => {
                format!("{} ({} -> {})", q(*l), a.render(space), b.render(space))
            }
            GTy::Ref(l, t) => format!("{} ref({})", q(*l), t.render(space)),
            GTy::Pair(l, a, b) => {
                format!("{} ({} * {})", q(*l), a.render(space), b.render(space))
            }
        }
    }
}

/// Grounds an inferred type under the least solution.
#[must_use]
pub fn ground(quals: &QTyArena, id: QTyId, sol: &Solution) -> GTy {
    let node = quals.get(id);
    let q = sol.eval_least(node.qual);
    match node.shape {
        QShape::Int => GTy::Int(q),
        QShape::Unit => GTy::Unit(q),
        QShape::Fun(a, b) => GTy::Fun(
            q,
            Box::new(ground(quals, a, sol)),
            Box::new(ground(quals, b, sol)),
        ),
        QShape::Ref(t) => GTy::Ref(q, Box::new(ground(quals, t, sol))),
        QShape::Pair(a, b) => GTy::Pair(
            q,
            Box::new(ground(quals, a, sol)),
            Box::new(ground(quals, b, sol)),
        ),
    }
}

/// The ground subtyping relation `⊢ ρ ≤ ρ′` of Figure 4a:
/// covariant `int`/`unit`, contravariant/covariant functions, and
/// *invariant* ref contents (rule (SubRef)).
#[must_use]
pub fn subtype(space: &QualSpace, a: &GTy, b: &GTy) -> bool {
    match (a, b) {
        (GTy::Int(q1), GTy::Int(q2)) | (GTy::Unit(q1), GTy::Unit(q2)) => space.le(*q1, *q2),
        (GTy::Fun(q1, a1, r1), GTy::Fun(q2, a2, r2)) => {
            space.le(*q1, *q2) && subtype(space, a2, a1) && subtype(space, r1, r2)
        }
        (GTy::Ref(q1, t1), GTy::Ref(q2, t2)) => space.le(*q1, *q2) && t1 == t2,
        (GTy::Pair(q1, a1, b1), GTy::Pair(q2, a2, b2)) => {
            space.le(*q1, *q2) && subtype(space, a1, a2) && subtype(space, b1, b2)
        }
        _ => false,
    }
}

/// One failed side condition found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckViolation {
    /// The rule whose condition failed.
    pub rule: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Re-checks every syntax-directed rule of Figure 4 (plus the rule-set
/// hooks) on the solved types. Returns all failed conditions; an empty
/// vector means the inference result is self-consistent.
///
/// Returns a single synthetic violation if the outcome has no solution
/// (nothing to verify against).
#[must_use]
pub fn verify(expr: &Expr, outcome: &Outcome, rules: &dyn QualifierRules) -> Vec<CheckViolation> {
    let Some(sol) = outcome.solution() else {
        return vec![CheckViolation {
            rule: "(solve)",
            detail: "constraints unsatisfiable; nothing to verify".to_owned(),
        }];
    };
    let mut v = Verifier {
        outcome,
        sol,
        rules,
        space: outcome.space().clone(),
        violations: Vec::new(),
    };
    v.walk(expr);
    v.violations
}

struct Verifier<'a> {
    outcome: &'a Outcome,
    sol: &'a Solution,
    rules: &'a dyn QualifierRules,
    space: QualSpace,
    violations: Vec<CheckViolation>,
}

impl Verifier<'_> {
    fn gty(&self, e: &Expr) -> GTy {
        let id = self.outcome.node_qty[&e.id];
        ground(&self.outcome.quals, id, self.sol)
    }

    fn require_sub(&mut self, rule: &'static str, a: &GTy, b: &GTy) {
        if !subtype(&self.space, a, b) {
            self.violations.push(CheckViolation {
                rule,
                detail: format!(
                    "{} ≰ {}",
                    a.render(&self.space),
                    b.render(&self.space)
                ),
            });
        }
    }

    fn require_le(&mut self, rule: &'static str, a: QualSet, b: QualSet) {
        if !self.space.le(a, b) {
            self.violations.push(CheckViolation {
                rule,
                detail: format!(
                    "{} ⋢ {}",
                    self.space.render(a),
                    self.space.render(b)
                ),
            });
        }
    }

    /// Runs a rules hook on ground qualifiers and records any failure.
    fn require_hook(
        &mut self,
        rule: &'static str,
        run: impl FnOnce(&dyn QualifierRules, &QualSpace, &mut ConstraintSet),
    ) {
        let mut cs = ConstraintSet::new();
        run(self.rules, &self.space, &mut cs);
        if let Err(e) = cs.solve_with_count(&self.space, 0) {
            self.violations.push(CheckViolation {
                rule,
                detail: e.to_string(),
            });
        }
    }

    fn walk(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Var(_)
            | ExprKind::Int(_)
            | ExprKind::Unit
            | ExprKind::Loc(_) => {}
            ExprKind::Lam(_, body) => {
                self.walk(body);
                let GTy::Fun(_, _, res) = self.gty(e) else {
                    self.violations.push(CheckViolation {
                        rule: "(Lam)",
                        detail: "lambda without function type".to_owned(),
                    });
                    return;
                };
                let b = self.gty(body);
                self.require_sub("(Lam)", &b, &res);
            }
            ExprKind::App(f, a) => {
                self.walk(f);
                self.walk(a);
                let GTy::Fun(fq, param, res) = self.gty(f) else {
                    self.violations.push(CheckViolation {
                        rule: "(App)",
                        detail: "operator without function type".to_owned(),
                    });
                    return;
                };
                let ta = self.gty(a);
                self.require_sub("(App) argument", &ta, &param);
                let out = self.gty(e);
                self.require_sub("(App) result", &res, &out);
                let oq = out.qual();
                self.require_hook("(App) hook", |r, s, cs| {
                    r.on_app(
                        s,
                        Qual::Const(fq),
                        Qual::Const(oq),
                        cs,
                        Provenance::synthetic("check"),
                    );
                });
            }
            ExprKind::If(g, t, f) => {
                self.walk(g);
                self.walk(t);
                self.walk(f);
                let out = self.gty(e);
                let tt = self.gty(t);
                let tf = self.gty(f);
                self.require_sub("(If) then", &tt, &out);
                self.require_sub("(If) else", &tf, &out);
                let gq = self.gty(g).qual();
                let oq = out.qual();
                self.require_hook("(If) hook", |r, s, cs| {
                    r.on_if(
                        s,
                        Qual::Const(gq),
                        Qual::Const(oq),
                        cs,
                        Provenance::synthetic("check"),
                    );
                });
            }
            ExprKind::Let(_, rhs, body) => {
                self.walk(rhs);
                self.walk(body);
            }
            ExprKind::Ref(inner) => {
                self.walk(inner);
                let GTy::Ref(_, contents) = self.gty(e) else {
                    self.violations.push(CheckViolation {
                        rule: "(Ref)",
                        detail: "ref without ref type".to_owned(),
                    });
                    return;
                };
                let ti = self.gty(inner);
                self.require_sub("(Ref)", &ti, &contents);
            }
            ExprKind::Deref(inner) => {
                self.walk(inner);
                let GTy::Ref(rq, contents) = self.gty(inner) else {
                    self.violations.push(CheckViolation {
                        rule: "(Deref)",
                        detail: "deref of non-ref".to_owned(),
                    });
                    return;
                };
                let out = self.gty(e);
                self.require_sub("(Deref)", &contents, &out);
                self.require_hook("(Deref) hook", |r, s, cs| {
                    r.on_deref(s, Qual::Const(rq), cs, Provenance::synthetic("check"));
                });
            }
            ExprKind::Assign(lhs, rhs) => {
                self.walk(lhs);
                self.walk(rhs);
                let GTy::Ref(rq, contents) = self.gty(lhs) else {
                    self.violations.push(CheckViolation {
                        rule: "(Assign)",
                        detail: "assignment to non-ref".to_owned(),
                    });
                    return;
                };
                let tr = self.gty(rhs);
                self.require_sub("(Assign)", &tr, &contents);
                self.require_hook("(Assign) hook", |r, s, cs| {
                    r.on_assign(s, Qual::Const(rq), cs, Provenance::synthetic("check"));
                });
            }
            ExprKind::Binop(_, a, b) => {
                self.walk(a);
                self.walk(b);
                let (qa, qb) = (self.gty(a).qual(), self.gty(b).qual());
                let qo = self.gty(e).qual();
                self.require_hook("(Arith) hook", |r, s, cs| {
                    r.on_arith(
                        s,
                        Qual::Const(qa),
                        Qual::Const(qb),
                        Qual::Const(qo),
                        cs,
                        Provenance::synthetic("check"),
                    );
                });
            }
            ExprKind::Pair(a, b) => {
                self.walk(a);
                self.walk(b);
                let GTy::Pair(_, ca, cb) = self.gty(e) else {
                    self.violations.push(CheckViolation {
                        rule: "(Pair)",
                        detail: "pair without pair type".to_owned(),
                    });
                    return;
                };
                let ta = self.gty(a);
                let tb = self.gty(b);
                self.require_sub("(Pair) fst", &ta, &ca);
                self.require_sub("(Pair) snd", &tb, &cb);
            }
            ExprKind::Fst(inner) => {
                self.walk(inner);
                let GTy::Pair(_, ca, _) = self.gty(inner) else {
                    self.violations.push(CheckViolation {
                        rule: "(Fst)",
                        detail: "fst of non-pair".to_owned(),
                    });
                    return;
                };
                let out = self.gty(e);
                self.require_sub("(Fst)", &ca, &out);
            }
            ExprKind::Snd(inner) => {
                self.walk(inner);
                let GTy::Pair(_, _, cb) = self.gty(inner) else {
                    self.violations.push(CheckViolation {
                        rule: "(Snd)",
                        detail: "snd of non-pair".to_owned(),
                    });
                    return;
                };
                let out = self.gty(e);
                self.require_sub("(Snd)", &cb, &out);
            }
            ExprKind::Annot(l, inner) => {
                self.walk(inner);
                let iq = self.gty(inner).qual();
                self.require_le("(Annot)", iq, *l);
                // The node's own qualifier is exactly l by construction.
                let nq = self.gty(e).qual();
                self.require_le("(Annot) result", nq, *l);
                self.require_le("(Annot) result", *l, nq);
            }
            ExprKind::Assert(inner, l) => {
                self.walk(inner);
                let iq = self.gty(inner).qual();
                self.require_le("(Assert)", iq, *l);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_program;
    use crate::rules::{ConstRules, NoRules, NonzeroRules};

    #[test]
    fn ground_subtyping_basics() {
        let s = QualSpace::const_only();
        let c = s.parse_set("const").unwrap();
        let n = s.none();
        assert!(subtype(&s, &GTy::Int(n), &GTy::Int(c)));
        assert!(!subtype(&s, &GTy::Int(c), &GTy::Int(n)));
        // Functions: contravariant argument.
        let f1 = GTy::Fun(n, Box::new(GTy::Int(c)), Box::new(GTy::Int(n)));
        let f2 = GTy::Fun(n, Box::new(GTy::Int(n)), Box::new(GTy::Int(c)));
        assert!(subtype(&s, &f1, &f2));
        assert!(!subtype(&s, &f2, &f1));
        // Refs: invariant contents.
        let r1 = GTy::Ref(n, Box::new(GTy::Int(n)));
        let r2 = GTy::Ref(c, Box::new(GTy::Int(n)));
        let r3 = GTy::Ref(c, Box::new(GTy::Int(c)));
        assert!(subtype(&s, &r1, &r2));
        assert!(!subtype(&s, &r1, &r3));
        // Mismatched shapes never relate.
        assert!(!subtype(&s, &GTy::Int(n), &GTy::Unit(n)));
    }

    #[test]
    fn verify_passes_on_well_qualified_programs() {
        let space = QualSpace::figure2();
        for src in [
            "let x = ref 1 in let u = x := 2 in !x ni ni",
            "let id = \\x. x in id (ref {nonzero} 1) ni",
            "if 1 then {const} 2 else 3 fi",
            "(\\f. f ()) (\\u. ref 9)",
        ] {
            let expr = crate::parser::parse(src, &space).unwrap();
            let out = crate::infer::infer_expr(&expr, &space, &NoRules).unwrap();
            assert!(out.is_well_qualified(), "{src}");
            let vs = verify(&expr, &out, &NoRules);
            assert!(vs.is_empty(), "{src} -> {vs:?}");
        }
    }

    #[test]
    fn verify_reports_unsolved() {
        let space = ConstRules::space();
        let src = "let x = {const} ref 1 in x := 2 ni";
        let expr = crate::parser::parse(src, &space).unwrap();
        let out = crate::infer::infer_expr(&expr, &space, &ConstRules).unwrap();
        assert!(!out.is_well_qualified());
        let vs = verify(&expr, &out, &ConstRules);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "(solve)");
    }

    #[test]
    fn verify_agrees_with_rules_hooks() {
        let space = NonzeroRules::space();
        let src = "let x = ref 37 in (!x)|{nonzero} ni";
        let out = infer_program(src, &space, &NonzeroRules).unwrap();
        assert!(out.is_well_qualified());
        let expr = crate::parser::parse(src, &space).unwrap();
        assert!(verify(&expr, &out, &NonzeroRules).is_empty());
    }

    #[test]
    fn gty_render() {
        let s = QualSpace::const_only();
        let t = GTy::Ref(
            s.parse_set("const").unwrap(),
            Box::new(GTy::Int(s.none())),
        );
        assert_eq!(t.render(&s), "const ref(∅ int)");
    }
}
