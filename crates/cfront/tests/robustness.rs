//! Robustness: the C front end must never panic — arbitrary byte soup
//! produces errors, not crashes, and anything that parses must also
//! survive sema and the pretty-printer.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_and_parser_never_panic(src in "\\PC*") {
        let _ = qual_cfront::parse(&src);
    }

    #[test]
    fn parser_never_panics_on_c_like_soup(
        src in "[a-z{}();,*&=+<>\\[\\]0-9 \\n\"/]*"
    ) {
        if let Ok(prog) = qual_cfront::parse(&src) {
            // Whatever parsed must print and re-parse.
            let printed = qual_cfront::pretty::render_program(&prog);
            let _ = qual_cfront::parse(&printed);
            // Sema may reject (unresolved names) but must not panic.
            let _ = qual_cfront::sema::analyze(&prog);
        }
    }

    #[test]
    fn token_stream_fragments_never_panic(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "int", "char", "const", "struct", "typedef", "*", "x", "y",
                "f", "(", ")", "{", "}", ";", ",", "=", "1", "return",
                "if", "else", "while", "[", "]", "...", "switch", "case",
                "default", ":", "goto", "extern", "static", "\"s\"",
            ]),
            0..40,
        )
    ) {
        let src = words.join(" ");
        if let Ok(prog) = qual_cfront::parse(&src) {
            let _ = qual_cfront::sema::analyze(&prog);
        }
    }
}

#[test]
fn pathological_inputs() {
    // Deep nesting is rejected with an error rather than a stack
    // overflow (the parser caps expression nesting).
    let deep = format!("int f(void) {{ return {}1{}; }}", "(".repeat(500), ")".repeat(500));
    let err = qual_cfront::parse(&deep).unwrap_err();
    assert!(err.message.contains("too deep"), "{err}");
    // Sane depths still parse.
    let ok = format!("int f(void) {{ return {}1{}; }}", "(".repeat(40), ")".repeat(40));
    assert!(qual_cfront::parse(&ok).is_ok());

    // Unterminated constructs.
    for src in ["struct s {", "int f(void) {", "char *s = \"", "/*", "int x = '", "f("] {
        assert!(qual_cfront::parse(src).is_err(), "{src:?} should error");
    }

    // Empty and whitespace-only.
    assert!(qual_cfront::parse("").unwrap().items.is_empty());
    assert!(qual_cfront::parse("  \n\t ").unwrap().items.is_empty());
}
