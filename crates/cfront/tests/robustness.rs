//! Robustness: the C front end must never panic — arbitrary byte soup
//! produces errors, not crashes, and anything that parses must also
//! survive sema and the pretty-printer.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_and_parser_never_panic(src in "\\PC*") {
        let _ = qual_cfront::parse(&src);
    }

    #[test]
    fn parser_never_panics_on_c_like_soup(
        src in "[a-z{}();,*&=+<>\\[\\]0-9 \\n\"/]*"
    ) {
        if let Ok(prog) = qual_cfront::parse(&src) {
            // Whatever parsed must print and re-parse.
            let printed = qual_cfront::pretty::render_program(&prog);
            let _ = qual_cfront::parse(&printed);
            // Sema may reject (unresolved names) but must not panic.
            let _ = qual_cfront::sema::analyze(&prog);
        }
    }

    #[test]
    fn token_stream_fragments_never_panic(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "int", "char", "const", "struct", "typedef", "*", "x", "y",
                "f", "(", ")", "{", "}", ";", ",", "=", "1", "return",
                "if", "else", "while", "[", "]", "...", "switch", "case",
                "default", ":", "goto", "extern", "static", "\"s\"",
            ]),
            0..40,
        )
    ) {
        let src = words.join(" ");
        if let Ok(prog) = qual_cfront::parse(&src) {
            let _ = qual_cfront::sema::analyze(&prog);
        }
    }

    #[test]
    fn recovery_never_panics_and_agrees_with_strict_parse(
        src in "[a-z{}();,*&=+<>\\[\\]0-9 \\n\"/@]*"
    ) {
        let r = qual_cfront::parse_with_recovery(&src);
        if let Ok(prog) = qual_cfront::parse(&src) {
            // On clean input recovery is the identity.
            prop_assert_eq!(r.errors.len(), 0);
            prop_assert_eq!(r.program.items.len(), prog.items.len());
        }
    }
}

#[test]
fn recovery_skips_broken_items() {
    let src = "int good1(void) { return 1; }
               bogus_type bad bad bad;
               int good2(void) { return 2; }";
    let r = qual_cfront::parse_with_recovery(src);
    assert_eq!(r.errors.len(), 1, "{:?}", r.errors);
    assert!(r.program.function("good1").is_some());
    assert!(r.program.function("good2").is_some());

    // A broken function *body* loses only that function; the unbalanced
    // braces are skipped up to the close of the definition.
    let src = "int before(void) { return 0; }
               int broken(void) { if (x ===) { } return; }
               int after(void) { return 2; }";
    let r = qual_cfront::parse_with_recovery(src);
    assert!(!r.errors.is_empty());
    assert!(r.program.function("before").is_some());
    assert!(r.program.function("broken").is_none());
    assert!(r.program.function("after").is_some());
}

#[test]
fn recovery_on_lex_failure_and_empty() {
    // Lexing is not recoverable: the whole unit is one error.
    let r = qual_cfront::parse_with_recovery("int x; /* unterminated");
    assert_eq!(r.errors.len(), 1);
    assert!(r.program.items.is_empty());

    let r = qual_cfront::parse_with_recovery("");
    assert!(r.errors.is_empty());
    assert!(r.program.items.is_empty());
}

#[test]
fn recovery_never_loops_on_garbage() {
    // Every item broken: recovery must still terminate and report.
    let r = qual_cfront::parse_with_recovery(") ) } ; @ # int");
    assert!(!r.errors.is_empty());
    assert!(r.program.items.is_empty());
}

#[test]
fn deep_unary_chains_error_out() {
    let deep = format!("int f(int x) {{ return {}x; }}", "!".repeat(500));
    let err = qual_cfront::parse(&deep).unwrap_err();
    assert!(err.message.contains("too deep"), "{err}");
    let ok = format!("int f(int x) {{ return {}x; }}", "!".repeat(100));
    assert!(qual_cfront::parse(&ok).is_ok());
}

#[test]
fn deep_statement_nesting_errors_out() {
    let deep = format!(
        "int f(void) {{ {} return 1; {} }}",
        "{".repeat(300),
        "}".repeat(300)
    );
    let err = qual_cfront::parse(&deep).unwrap_err();
    assert!(err.message.contains("too deep"), "{err}");
    let ok = format!(
        "int f(void) {{ {} return 1; {} }}",
        "{".repeat(30),
        "}".repeat(30)
    );
    assert!(qual_cfront::parse(&ok).is_ok());
}

#[test]
fn deep_declarators_and_types_error_out() {
    // Parenthesized declarator nesting.
    let deep = format!("int {}x{};", "(".repeat(300), ")".repeat(300));
    let err = qual_cfront::parse(&deep).unwrap_err();
    assert!(err.message.contains("too deep"), "{err}");

    // Pointer-level type depth (built iteratively, capped structurally).
    let deep = format!("int {}x;", "*".repeat(300));
    let err = qual_cfront::parse(&deep).unwrap_err();
    assert!(err.message.contains("too deep"), "{err}");
    let ok = format!("int {}x;", "*".repeat(8));
    assert!(qual_cfront::parse(&ok).is_ok());

    // Deep aggregate initializers.
    let deep = format!("int x = {}1{};", "{".repeat(300), "}".repeat(300));
    let err = qual_cfront::parse(&deep).unwrap_err();
    assert!(err.message.contains("too deep"), "{err}");

    // Nested struct definitions.
    let mut deep = String::new();
    for i in 0..200 {
        deep.push_str(&format!("struct s{i} {{ "));
    }
    deep.push_str("int x; ");
    for i in 0..200 {
        deep.push_str(&format!("}} m{i}; "));
    }
    let err = qual_cfront::parse(&deep).unwrap_err();
    assert!(err.message.contains("too deep"), "{err}");
}

#[test]
fn recovery_survives_depth_bombs_mid_file() {
    // A depth bomb in the middle of a file is contained to its item.
    let src = format!(
        "int a(void) {{ return 1; }}
         int bomb(void) {{ return {}1{}; }}
         int b(void) {{ return 2; }}",
        "(".repeat(500),
        ")".repeat(500)
    );
    let r = qual_cfront::parse_with_recovery(&src);
    assert!(!r.errors.is_empty());
    assert!(r.program.function("a").is_some());
    assert!(r.program.function("b").is_some());
    assert!(r.program.function("bomb").is_none());
}

#[test]
fn pathological_inputs() {
    // Deep nesting is rejected with an error rather than a stack
    // overflow (the parser caps expression nesting).
    let deep = format!("int f(void) {{ return {}1{}; }}", "(".repeat(500), ")".repeat(500));
    let err = qual_cfront::parse(&deep).unwrap_err();
    assert!(err.message.contains("too deep"), "{err}");
    // Sane depths still parse.
    let ok = format!("int f(void) {{ return {}1{}; }}", "(".repeat(40), ")".repeat(40));
    assert!(qual_cfront::parse(&ok).is_ok());

    // Unterminated constructs.
    for src in ["struct s {", "int f(void) {", "char *s = \"", "/*", "int x = '", "f("] {
        assert!(qual_cfront::parse(src).is_err(), "{src:?} should error");
    }

    // Empty and whitespace-only.
    assert!(qual_cfront::parse("").unwrap().items.is_empty());
    assert!(qual_cfront::parse("  \n\t ").unwrap().items.is_empty());
}
