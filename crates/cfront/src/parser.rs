//! Recursive-descent parser for the C subset.
//!
//! Standard C declarator syntax is supported (pointers with per-level
//! `const`, arrays, function declarators including function pointers via
//! parenthesized declarators). Typedefs are expanded at use, following
//! the paper's §4.2 ("we treat typedefs as macro-expansions"): the
//! recorded AST contains only structural types.

use std::collections::HashMap;

use crate::ast::{
    AssignOp, BinOp, Block, Expr, ExprKind, FnDef, Item, Program, Stmt, Storage, SwitchArm,
    UnOp,
};
use crate::error::CError;
use crate::lexer::{lex, Span, SpannedTok, Tok};
use crate::types::{CTy, CTyKind, FnTy, Scalar};

/// Parses a translation unit.
///
/// # Errors
///
/// Returns the first [`CError`] encountered.
pub fn parse(src: &str) -> Result<Program, CError> {
    let _span = qual_obs::span("parse");
    let toks = lex(src)?;
    let mut p = Parser::new(toks);
    p.program()
}

/// A translation unit parsed with error recovery: every top-level item
/// that failed to parse was skipped (recorded in `errors`) and the rest
/// of the unit was still parsed into `program`.
#[derive(Debug, Default)]
pub struct RecoveredParse {
    /// The items that did parse.
    pub program: Program,
    /// One error per skipped region, in source order.
    pub errors: Vec<CError>,
}

/// Parses a translation unit, skipping broken top-level items instead
/// of aborting: after an error the parser discards tokens up to the
/// next safe synchronization point (a `;` or closing `}` at top level)
/// and resumes. A lexer failure still loses the whole file — there is
/// no token stream to recover on.
#[must_use]
pub fn parse_with_recovery(src: &str) -> RecoveredParse {
    let _span = qual_obs::span("parse");
    match lex(src) {
        Err(e) => RecoveredParse {
            program: Program::default(),
            errors: vec![e],
        },
        Ok(toks) => Parser::new(toks).program_recovering(),
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    typedefs: HashMap<String, CTy>,
    next_expr_id: u32,
    anon_counter: u32,
    /// Items emitted out of line (struct/enum definitions found inside
    /// declaration specifiers).
    items: Vec<Item>,
    /// Parameter names from the most recently built function declarator
    /// (side channel between `DeclOp::Func` and `take_param_names`).
    last_param_names: Vec<Option<String>>,
    /// Current expression-nesting depth (guards against stack overflow
    /// on pathological inputs).
    depth: u32,
    /// Current statement/block nesting depth.
    stmt_depth: u32,
    /// Current declarator/struct/initializer nesting depth.
    decl_depth: u32,
    /// Current unary-operator chain depth (prefix ops, casts, sizeof).
    unary_depth: u32,
}

/// Maximum expression nesting (each level costs ~a dozen parser frames).
const MAX_EXPR_DEPTH: u32 = 64;

/// Maximum statement/block nesting.
const MAX_STMT_DEPTH: u32 = 64;

/// Maximum declarator/struct/initializer nesting.
const MAX_DECL_DEPTH: u32 = 64;

/// Maximum unary chain length. A chain spends one shallow frame per
/// link (unlike full expression levels), so the cap is looser; it also
/// absorbs the one unary frame each parenthesized level contributes.
const MAX_UNARY_DEPTH: u32 = 192;

/// Maximum pointer/array/function nesting in a single constructed type.
/// Everything downstream (θ translation, qualifier-shape unification,
/// the pretty-printer) recurses over type spines, so this parse-time cap
/// is what makes those recursions total.
const MAX_TYPE_DEPTH: usize = 128;

/// A parsed parameter list: (optionally named) parameters plus the
/// varargs flag.
type ParamList = (Vec<(Option<String>, CTy)>, bool);

/// One declarator operation, collected in reading order from the
/// identifier outward.
enum DeclOp {
    Ptr { is_const: bool },
    Array(Option<u64>),
    Func(Vec<(Option<String>, CTy)>, bool),
}

impl Parser {
    fn new(toks: Vec<SpannedTok>) -> Parser {
        Parser {
            toks,
            pos: 0,
            typedefs: HashMap::new(),
            next_expr_id: 0,
            anon_counter: 0,
            items: Vec::new(),
            last_param_names: Vec::new(),
            depth: 0,
            stmt_depth: 0,
            decl_depth: 0,
            unary_depth: 0,
        }
    }

    /// Runs `f` one nesting level deeper on the chosen counter, erroring
    /// out (instead of overflowing the stack) past `limit`.
    fn nested<T>(
        &mut self,
        counter: fn(&mut Parser) -> &mut u32,
        limit: u32,
        what: &'static str,
        f: impl FnOnce(&mut Parser) -> Result<T, CError>,
    ) -> Result<T, CError> {
        if *counter(self) >= limit {
            return Err(CError::at(
                self.peek_span(),
                format!("{what} nesting too deep"),
            ));
        }
        *counter(self) += 1;
        let r = f(self);
        *counter(self) -= 1;
        r
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> SpannedTok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<Span, CError> {
        if self.peek() == t {
            Ok(self.bump().span)
        } else {
            Err(CError::at(
                self.peek_span(),
                format!("expected {t}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), CError> {
        match self.peek().clone() {
            Tok::Ident(s) => Ok((s, self.bump().span)),
            other => Err(CError::at(
                self.peek_span(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn fresh_expr_id(&mut self) -> u32 {
        let id = self.next_expr_id;
        self.next_expr_id += 1;
        id
    }

    fn expr_node(&mut self, kind: ExprKind, span: Span) -> Expr {
        Expr {
            kind,
            span,
            id: self.fresh_expr_id(),
        }
    }

    // ----- top level ---------------------------------------------------

    fn program(&mut self) -> Result<Program, CError> {
        let mut prog = Program::default();
        while self.peek() != &Tok::Eof {
            let before = self.items.len();
            let item = self.item()?;
            // Struct/enum defs discovered in specifiers come first.
            prog.items.extend(self.items.drain(before..));
            prog.items.extend(item);
        }
        Ok(prog)
    }

    /// Like [`Parser::program`], but a failing top-level item is
    /// recorded and skipped rather than aborting the parse.
    fn program_recovering(&mut self) -> RecoveredParse {
        let mut prog = Program::default();
        let mut errors = Vec::new();
        while self.peek() != &Tok::Eof {
            let before_items = self.items.len();
            let before_pos = self.pos;
            match self.item() {
                Ok(item) => {
                    prog.items.extend(self.items.drain(before_items..));
                    prog.items.extend(item);
                }
                Err(e) => {
                    errors.push(e);
                    // Drop any side-channel items from the broken region
                    // and reset nesting counters (unwinding restored
                    // them, but be defensive — they gate recursion).
                    self.items.truncate(before_items);
                    self.depth = 0;
                    self.stmt_depth = 0;
                    self.decl_depth = 0;
                    self.unary_depth = 0;
                    self.synchronize();
                    if self.pos == before_pos && self.peek() != &Tok::Eof {
                        self.bump();
                    }
                }
            }
        }
        RecoveredParse {
            program: prog,
            errors,
        }
    }

    /// Skips to the next plausible top-level boundary: a `;` outside
    /// braces, or a `}` closing more braces than were opened since the
    /// error point (i.e. the end of the broken definition).
    fn synchronize(&mut self) {
        let mut depth = 0i64;
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::Semi if depth <= 0 => {
                    self.bump();
                    return;
                }
                Tok::LBrace => {
                    depth += 1;
                    self.bump();
                }
                Tok::RBrace => {
                    depth -= 1;
                    self.bump();
                    if depth <= 0 {
                        return;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Parses one top-level construct, returning zero or more items.
    fn item(&mut self) -> Result<Vec<Item>, CError> {
        let start = self.peek_span();
        if self.eat(&Tok::KwTypedef) {
            let (base, _) = self.decl_specifiers()?;
            let (name, ty) = self.declarator(base)?;
            let name = name.ok_or_else(|| {
                CError::at(start, "typedef requires a name")
            })?;
            self.expect(&Tok::Semi)?;
            self.typedefs.insert(name.clone(), ty.clone());
            return Ok(vec![Item::Typedef {
                name,
                ty,
                span: start,
            }]);
        }

        let (base, storage) = self.decl_specifiers()?;
        // `struct S { ... };` alone.
        if self.eat(&Tok::Semi) {
            return Ok(Vec::new());
        }

        let (name, ty) = self.declarator(base.clone())?;
        let name = name.ok_or_else(|| CError::at(start, "expected a declarator name"))?;

        // Function definition?
        if let CTyKind::Func(sig) = &ty.kind {
            if self.peek() == &Tok::LBrace {
                let params = self.take_param_names(&sig.params)?;
                let body = self.block()?;
                return Ok(vec![Item::Func(FnDef {
                    name,
                    ret: sig.ret.clone(),
                    params,
                    varargs: sig.varargs,
                    body,
                    storage,
                    span: start,
                })]);
            }
        }

        // Otherwise: globals / prototypes, possibly a comma list.
        let mut items = Vec::new();
        let mut cur_name = name;
        let mut cur_ty = ty;
        loop {
            match &cur_ty.kind {
                CTyKind::Func(sig) => items.push(Item::Proto {
                    name: cur_name.clone(),
                    sig: (**sig).clone(),
                    storage,
                    span: start,
                }),
                _ => {
                    let init = if self.eat(&Tok::Assign) {
                        Some(self.initializer()?)
                    } else {
                        None
                    };
                    items.push(Item::Global {
                        name: cur_name.clone(),
                        ty: cur_ty.clone(),
                        init,
                        storage,
                        span: start,
                    });
                }
            }
            if self.eat(&Tok::Comma) {
                let (n, t) = self.declarator(base.clone())?;
                cur_name =
                    n.ok_or_else(|| CError::at(self.peek_span(), "expected declarator"))?;
                cur_ty = t;
            } else {
                self.expect(&Tok::Semi)?;
                break;
            }
        }
        Ok(items)
    }

    /// Pulls the parameter names recorded by the declarator out of the
    /// signature (definitions need names; prototypes may omit them).
    fn take_param_names(&mut self, params: &[CTy]) -> Result<Vec<(String, CTy)>, CError> {
        // Names were stashed alongside types in `last_param_names`.
        let names = std::mem::take(&mut self.last_param_names);
        if names.len() != params.len() {
            return Err(CError::at(
                self.peek_span(),
                "internal error: parameter name mismatch",
            ));
        }
        Ok(names
            .into_iter()
            .zip(params.iter().cloned())
            .enumerate()
            .map(|(i, (n, t))| (n.unwrap_or_else(|| format!("__arg{i}")), t))
            .collect())
    }

    // ----- declarations -------------------------------------------------

    /// Parses declaration specifiers: storage class, `const`, and the
    /// base type. Struct/enum definitions encountered here are pushed to
    /// `self.items`.
    fn decl_specifiers(&mut self) -> Result<(CTy, Storage), CError> {
        let mut storage = Storage::None;
        let mut is_const = false;
        let mut base: Option<CTy> = None;
        let mut saw_unsigned = false;
        let mut scalar: Option<Scalar> = None;
        loop {
            match self.peek().clone() {
                Tok::KwConst => {
                    self.bump();
                    is_const = true;
                }
                Tok::KwStatic => {
                    self.bump();
                    storage = Storage::Static;
                }
                Tok::KwExtern => {
                    self.bump();
                    storage = Storage::Extern;
                }
                Tok::KwSigned => {
                    self.bump();
                }
                Tok::KwUnsigned => {
                    self.bump();
                    saw_unsigned = true;
                }
                Tok::KwVoid => {
                    self.bump();
                    scalar = Some(Scalar::Void);
                }
                Tok::KwChar => {
                    self.bump();
                    scalar = Some(Scalar::Char);
                }
                Tok::KwShort => {
                    self.bump();
                    scalar = Some(Scalar::Short);
                }
                Tok::KwInt => {
                    self.bump();
                    if scalar.is_none() || scalar == Some(Scalar::Int) {
                        scalar = Some(Scalar::Int);
                    }
                    // `short int` / `long int`: keep the modifier.
                }
                Tok::KwLong => {
                    self.bump();
                    scalar = Some(Scalar::Long);
                }
                Tok::KwFloat => {
                    self.bump();
                    scalar = Some(Scalar::Float);
                }
                Tok::KwDouble => {
                    self.bump();
                    scalar = Some(Scalar::Double);
                }
                Tok::KwStruct | Tok::KwUnion => {
                    self.bump();
                    base = Some(self.struct_specifier()?);
                }
                Tok::KwEnum => {
                    self.bump();
                    base = Some(self.enum_specifier()?);
                }
                Tok::Ident(name) if base.is_none() && scalar.is_none() => {
                    if let Some(alias) = self.typedefs.get(&name).cloned() {
                        // Typedef expansion (§4.2): substitute eagerly.
                        self.bump();
                        base = Some(alias);
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let mut ty = match (base, scalar) {
            (Some(b), _) => b,
            (None, Some(s)) => CTy::scalar(s),
            (None, None) if saw_unsigned => CTy::int(),
            (None, None) => {
                return Err(CError::at(self.peek_span(), "expected type specifier"))
            }
        };
        if is_const {
            ty = ty.with_const();
        }
        Ok((ty, storage))
    }

    fn struct_specifier(&mut self) -> Result<CTy, CError> {
        self.nested(
            |p| &mut p.decl_depth,
            MAX_DECL_DEPTH,
            "struct definition",
            Self::struct_specifier_inner,
        )
    }

    fn struct_specifier_inner(&mut self) -> Result<CTy, CError> {
        let span = self.peek_span();
        let name = match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                s
            }
            _ => {
                self.anon_counter += 1;
                format!("__anon_struct_{}", self.anon_counter)
            }
        };
        if self.eat(&Tok::LBrace) {
            let mut fields = Vec::new();
            while self.peek() != &Tok::RBrace {
                let (base, _) = self.decl_specifiers()?;
                loop {
                    let (fname, fty) = self.declarator(base.clone())?;
                    let fname = fname.ok_or_else(|| {
                        CError::at(self.peek_span(), "expected field name")
                    })?;
                    fields.push((fname, fty));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::Semi)?;
            }
            self.expect(&Tok::RBrace)?;
            self.items.push(Item::StructDef {
                name: name.clone(),
                fields,
                span,
            });
        }
        Ok(CTy {
            is_const: false,
            kind: CTyKind::Struct(name),
        })
    }

    fn enum_specifier(&mut self) -> Result<CTy, CError> {
        let span = self.peek_span();
        let name = match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                s
            }
            _ => {
                self.anon_counter += 1;
                format!("__anon_enum_{}", self.anon_counter)
            }
        };
        if self.eat(&Tok::LBrace) {
            let mut consts = Vec::new();
            let mut next_val = 0i64;
            while self.peek() != &Tok::RBrace {
                let (cname, _) = self.ident()?;
                if self.eat(&Tok::Assign) {
                    // Constant expressions: accept a literal (possibly
                    // negated); anything fancier keeps the running value.
                    let neg = self.eat(&Tok::Minus);
                    if let Tok::IntLit(v) = self.peek().clone() {
                        self.bump();
                        next_val = if neg { -v } else { v };
                    }
                }
                consts.push((cname, next_val));
                next_val += 1;
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace)?;
            self.items.push(Item::EnumDef { name, consts, span });
        }
        Ok(CTy::int())
    }

    /// Parses a (possibly abstract) declarator against `base`, returning
    /// the declared name (if any) and the complete type.
    fn declarator(&mut self, base: CTy) -> Result<(Option<String>, CTy), CError> {
        let mut ops = Vec::new();
        let name = self.declarator_ops(&mut ops)?;
        // Cap the constructed type's nesting *before* building it: the
        // base depth is already capped (typedefs go through here too),
        // and each op adds at most one level.
        if base.depth() + ops.len() > MAX_TYPE_DEPTH {
            return Err(CError::at(
                self.peek_span(),
                "declared type nesting too deep",
            ));
        }
        // `ops` is in reading order (identifier outward); the type is
        // built by applying them to the base in reverse.
        let mut ty = base;
        for op in ops.into_iter().rev() {
            ty = match op {
                DeclOp::Ptr { is_const } => CTy {
                    is_const,
                    kind: CTyKind::Ptr(Box::new(ty)),
                },
                DeclOp::Array(n) => CTy {
                    is_const: false,
                    kind: CTyKind::Array(Box::new(ty), n),
                },
                DeclOp::Func(params, varargs) => {
                    self.last_param_names = params.iter().map(|(n, _)| n.clone()).collect();
                    CTy {
                        is_const: false,
                        kind: CTyKind::Func(Box::new(FnTy {
                            ret: ty,
                            params: params.into_iter().map(|(_, t)| t).collect(),
                            varargs,
                        })),
                    }
                }
            };
        }
        Ok((name, ty))
    }

    fn declarator_ops(&mut self, ops: &mut Vec<DeclOp>) -> Result<Option<String>, CError> {
        self.nested(
            |p| &mut p.decl_depth,
            MAX_DECL_DEPTH,
            "declarator",
            |this| {
                // Pointer prefix: collected left-to-right, but reading
                // order from the identifier is right-to-left, so gather
                // then reverse-append.
                let mut ptrs = Vec::new();
                while this.eat(&Tok::Star) {
                    let mut is_const = false;
                    while this.eat(&Tok::KwConst) {
                        is_const = true;
                    }
                    ptrs.push(DeclOp::Ptr { is_const });
                }
                let name = this.direct_declarator_ops(ops)?;
                ops.extend(ptrs.into_iter().rev());
                Ok(name)
            },
        )
    }

    fn direct_declarator_ops(
        &mut self,
        ops: &mut Vec<DeclOp>,
    ) -> Result<Option<String>, CError> {
        let mut inner = Vec::new();
        let name = if self.peek() == &Tok::LParen && self.is_inner_declarator() {
            self.bump();
            let n = self.declarator_ops(&mut inner)?;
            self.expect(&Tok::RParen)?;
            n
        } else if let Tok::Ident(s) = self.peek().clone() {
            self.bump();
            Some(s)
        } else {
            None
        };
        // Reading order from the identifier: everything inside the
        // parentheses first (it is nearer the name), then our suffixes.
        let mut suffixes = Vec::new();
        loop {
            if self.eat(&Tok::LBracket) {
                let n = if let Tok::IntLit(v) = self.peek().clone() {
                    self.bump();
                    Some(v.max(0) as u64)
                } else {
                    None
                };
                self.expect(&Tok::RBracket)?;
                suffixes.push(DeclOp::Array(n));
            } else if self.peek() == &Tok::LParen {
                self.bump();
                let (params, varargs) = self.param_list()?;
                suffixes.push(DeclOp::Func(params, varargs));
            } else {
                break;
            }
        }
        ops.extend(inner);
        ops.extend(suffixes);
        Ok(name)
    }

    /// Distinguishes `(*f)`-style inner declarators from parameter lists.
    fn is_inner_declarator(&self) -> bool {
        matches!(self.peek2(), Tok::Star | Tok::LParen)
    }

    fn param_list(&mut self) -> Result<ParamList, CError> {
        let mut params = Vec::new();
        let mut varargs = false;
        if self.eat(&Tok::RParen) {
            return Ok((params, varargs));
        }
        // `(void)` means no parameters.
        if self.peek() == &Tok::KwVoid && self.peek2() == &Tok::RParen {
            self.bump();
            self.bump();
            return Ok((params, varargs));
        }
        loop {
            if self.eat(&Tok::Ellipsis) {
                varargs = true;
                break;
            }
            let (base, _) = self.decl_specifiers()?;
            let (name, ty) = self.declarator(base)?;
            // Array parameters decay to pointers.
            params.push((name, ty.decayed()));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok((params, varargs))
    }

    fn initializer(&mut self) -> Result<Expr, CError> {
        self.nested(
            |p| &mut p.decl_depth,
            MAX_DECL_DEPTH,
            "initializer",
            Self::initializer_inner,
        )
    }

    fn initializer_inner(&mut self) -> Result<Expr, CError> {
        if self.peek() == &Tok::LBrace {
            // Aggregate initializer: parse the elements but represent the
            // aggregate as a comma chain (the analysis only needs flows).
            let lo = self.bump().span;
            let mut parts = Vec::new();
            while self.peek() != &Tok::RBrace {
                parts.push(self.initializer()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            let hi = self.expect(&Tok::RBrace)?;
            let span = lo.to(hi);
            let mut it = parts.into_iter();
            let first = it
                .next()
                .unwrap_or(Expr {
                    kind: ExprKind::IntLit(0),
                    span,
                    id: u32::MAX,
                });
            let mut acc = if first.id == u32::MAX {
                self.expr_node(ExprKind::IntLit(0), span)
            } else {
                first
            };
            for next in it {
                let sp = acc.span.to(next.span);
                acc = self.expr_node(ExprKind::Comma(Box::new(acc), Box::new(next)), sp);
            }
            Ok(acc)
        } else {
            self.assignment_expr()
        }
    }

    // ----- statements ---------------------------------------------------

    fn block(&mut self) -> Result<Block, CError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Block { stmts })
    }

    fn starts_type(&self) -> bool {
        match self.peek() {
            Tok::KwConst
            | Tok::KwInt
            | Tok::KwChar
            | Tok::KwLong
            | Tok::KwShort
            | Tok::KwUnsigned
            | Tok::KwSigned
            | Tok::KwVoid
            | Tok::KwFloat
            | Tok::KwDouble
            | Tok::KwStruct
            | Tok::KwEnum
            | Tok::KwUnion
            | Tok::KwStatic
            | Tok::KwExtern => true,
            Tok::Ident(s) => self.typedefs.contains_key(s),
            _ => false,
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CError> {
        self.nested(
            |p| &mut p.stmt_depth,
            MAX_STMT_DEPTH,
            "statement",
            Self::stmt_inner,
        )
    }

    fn stmt_inner(&mut self) -> Result<Stmt, CError> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = self.stmt_as_block()?;
                let els = if self.eat(&Tok::KwElse) {
                    Some(self.stmt_as_block()?)
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwDo => {
                self.bump();
                let body = self.stmt_as_block()?;
                self.expect(&Tok::KwWhile)?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.starts_type() {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                let body = self.stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::KwSwitch => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::LBrace)?;
                let mut arms: Vec<SwitchArm> = Vec::new();
                while self.peek() != &Tok::RBrace {
                    match self.peek().clone() {
                        Tok::KwCase => {
                            self.bump();
                            let neg = self.eat(&Tok::Minus);
                            let v = match self.peek().clone() {
                                Tok::IntLit(v) => {
                                    self.bump();
                                    if neg { -v } else { v }
                                }
                                Tok::CharLit(v) => {
                                    self.bump();
                                    v
                                }
                                Tok::Ident(_) => {
                                    // enum constant: value resolved later;
                                    // the analysis only needs the body.
                                    self.bump();
                                    0
                                }
                                other => {
                                    return Err(CError::at(
                                        self.peek_span(),
                                        format!("expected case value, found {other}"),
                                    ))
                                }
                            };
                            self.expect(&Tok::Colon)?;
                            arms.push(SwitchArm {
                                value: Some(v),
                                body: Block::default(),
                            });
                        }
                        Tok::KwDefault => {
                            self.bump();
                            self.expect(&Tok::Colon)?;
                            arms.push(SwitchArm {
                                value: None,
                                body: Block::default(),
                            });
                        }
                        _ => {
                            let st = self.stmt()?;
                            match arms.last_mut() {
                                Some(arm) => arm.body.stmts.push(st),
                                None => {
                                    return Err(CError::at(
                                        span,
                                        "statement before first case label",
                                    ))
                                }
                            }
                        }
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(Stmt::Switch { cond, arms })
            }
            Tok::KwGoto => {
                self.bump();
                let (label, _) = self.ident()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Goto(label, span))
            }
            // A label: `name:` followed by a statement.
            Tok::Ident(name)
                if self.peek2() == &Tok::Colon && !self.typedefs.contains_key(&name) =>
            {
                self.bump();
                self.bump();
                let inner = self.stmt()?;
                Ok(Stmt::Label(name, Box::new(inner)))
            }
            Tok::KwReturn => {
                self.bump();
                let e = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(e, span))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break(span))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue(span))
            }
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Block(Block::default()))
            }
            _ if self.starts_type() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn stmt_as_block(&mut self) -> Result<Block, CError> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.stmt()?],
            })
        }
    }

    /// A local declaration statement; comma lists become nested blocks of
    /// single declarations.
    fn decl_stmt(&mut self) -> Result<Stmt, CError> {
        let span = self.peek_span();
        let (base, _) = self.decl_specifiers()?;
        let mut decls = Vec::new();
        loop {
            let (name, ty) = self.declarator(base.clone())?;
            let name =
                name.ok_or_else(|| CError::at(self.peek_span(), "expected declarator"))?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            decls.push(Stmt::Decl {
                name,
                ty,
                init,
                span,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Semi)?;
        if decls.len() == 1 {
            Ok(decls.pop().expect("one decl"))
        } else {
            Ok(Stmt::Block(Block { stmts: decls }))
        }
    }

    // ----- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.assignment_expr()?;
        while self.peek() == &Tok::Comma {
            self.bump();
            let rhs = self.assignment_expr()?;
            let span = e.span.to(rhs.span);
            e = self.expr_node(ExprKind::Comma(Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn assignment_expr(&mut self) -> Result<Expr, CError> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(CError::at(
                self.peek_span(),
                "expression nesting too deep",
            ));
        }
        self.depth += 1;
        let r = self.assignment_expr_inner();
        self.depth -= 1;
        r
    }

    fn assignment_expr_inner(&mut self) -> Result<Expr, CError> {
        let lhs = self.conditional_expr()?;
        let op = match self.peek() {
            Tok::Assign => Some(AssignOp::Plain),
            Tok::PlusAssign => Some(AssignOp::Compound(BinOp::Add)),
            Tok::MinusAssign => Some(AssignOp::Compound(BinOp::Sub)),
            Tok::StarAssign => Some(AssignOp::Compound(BinOp::Mul)),
            Tok::SlashAssign => Some(AssignOp::Compound(BinOp::Div)),
            Tok::PercentAssign => Some(AssignOp::Compound(BinOp::Rem)),
            Tok::AmpAssign => Some(AssignOp::Compound(BinOp::BitAnd)),
            Tok::PipeAssign => Some(AssignOp::Compound(BinOp::BitOr)),
            Tok::CaretAssign => Some(AssignOp::Compound(BinOp::BitXor)),
            Tok::ShlAssign => Some(AssignOp::Compound(BinOp::Shl)),
            Tok::ShrAssign => Some(AssignOp::Compound(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assignment_expr()?;
            let span = lhs.span.to(rhs.span);
            Ok(self.expr_node(ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)), span))
        } else {
            Ok(lhs)
        }
    }

    fn conditional_expr(&mut self) -> Result<Expr, CError> {
        let cond = self.binary_expr(0)?;
        if self.eat(&Tok::Question) {
            let t = self.expr()?;
            self.expect(&Tok::Colon)?;
            let f = self.conditional_expr()?;
            let span = cond.span.to(f.span);
            Ok(self.expr_node(
                ExprKind::Cond(Box::new(cond), Box::new(t), Box::new(f)),
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self, level: u8) -> Option<BinOp> {
        let op = match (level, self.peek()) {
            (0, Tok::PipePipe) => BinOp::Or,
            (1, Tok::AmpAmp) => BinOp::And,
            (2, Tok::Pipe) => BinOp::BitOr,
            (3, Tok::Caret) => BinOp::BitXor,
            (4, Tok::Amp) => BinOp::BitAnd,
            (5, Tok::EqEq) => BinOp::Eq,
            (5, Tok::NotEq) => BinOp::Ne,
            (6, Tok::Lt) => BinOp::Lt,
            (6, Tok::Gt) => BinOp::Gt,
            (6, Tok::Le) => BinOp::Le,
            (6, Tok::Ge) => BinOp::Ge,
            (7, Tok::Shl) => BinOp::Shl,
            (7, Tok::Shr) => BinOp::Shr,
            (8, Tok::Plus) => BinOp::Add,
            (8, Tok::Minus) => BinOp::Sub,
            (9, Tok::Star) => BinOp::Mul,
            (9, Tok::Slash) => BinOp::Div,
            (9, Tok::Percent) => BinOp::Rem,
            _ => return None,
        };
        Some(op)
    }

    fn binary_expr(&mut self, level: u8) -> Result<Expr, CError> {
        if level > 9 {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = self.expr_node(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CError> {
        self.nested(
            |p| &mut p.unary_depth,
            MAX_UNARY_DEPTH,
            "operator",
            Self::unary_expr_inner,
        )
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, CError> {
        let span = self.peek_span();
        let op = match self.peek() {
            Tok::Minus => Some(UnOp::Neg),
            Tok::Bang => Some(UnOp::Not),
            Tok::Tilde => Some(UnOp::BitNot),
            Tok::Star => Some(UnOp::Deref),
            Tok::Amp => Some(UnOp::Addr),
            Tok::PlusPlus => Some(UnOp::PreInc),
            Tok::MinusMinus => Some(UnOp::PreDec),
            Tok::Plus => {
                self.bump();
                return self.unary_expr();
            }
            Tok::KwSizeof => {
                self.bump();
                if self.peek() == &Tok::LParen && self.type_follows_lparen() {
                    self.bump();
                    let (base, _) = self.decl_specifiers()?;
                    let (_, _ty) = self.declarator(base)?;
                    let hi = self.expect(&Tok::RParen)?;
                    return Ok(self.expr_node(ExprKind::Sizeof, span.to(hi)));
                }
                let e = self.unary_expr()?;
                let sp = span.to(e.span);
                return Ok(self.expr_node(ExprKind::Sizeof, sp));
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary_expr()?;
            let sp = span.to(e.span);
            return Ok(self.expr_node(ExprKind::Unary(op, Box::new(e)), sp));
        }
        // Cast?
        if self.peek() == &Tok::LParen && self.type_follows_lparen() {
            self.bump();
            let (base, _) = self.decl_specifiers()?;
            let (_, ty) = self.declarator(base)?;
            self.expect(&Tok::RParen)?;
            let e = self.unary_expr()?;
            let sp = span.to(e.span);
            return Ok(self.expr_node(ExprKind::Cast(ty, Box::new(e)), sp));
        }
        self.postfix_expr()
    }

    fn type_follows_lparen(&self) -> bool {
        match self.peek2() {
            Tok::KwConst
            | Tok::KwInt
            | Tok::KwChar
            | Tok::KwLong
            | Tok::KwShort
            | Tok::KwUnsigned
            | Tok::KwSigned
            | Tok::KwVoid
            | Tok::KwFloat
            | Tok::KwDouble
            | Tok::KwStruct
            | Tok::KwEnum
            | Tok::KwUnion => true,
            Tok::Ident(s) => self.typedefs.contains_key(s),
            _ => false,
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek().clone() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.assignment_expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    let hi = self.expect(&Tok::RParen)?;
                    let span = e.span.to(hi);
                    e = self.expr_node(ExprKind::Call(Box::new(e), args), span);
                }
                Tok::LBracket => {
                    self.bump();
                    let i = self.expr()?;
                    let hi = self.expect(&Tok::RBracket)?;
                    let span = e.span.to(hi);
                    e = self.expr_node(ExprKind::Index(Box::new(e), Box::new(i)), span);
                }
                Tok::Dot => {
                    self.bump();
                    let (f, hi) = self.ident()?;
                    let span = e.span.to(hi);
                    e = self.expr_node(ExprKind::Member(Box::new(e), f), span);
                }
                Tok::Arrow => {
                    self.bump();
                    let (f, hi) = self.ident()?;
                    let span = e.span.to(hi);
                    e = self.expr_node(ExprKind::PMember(Box::new(e), f), span);
                }
                Tok::PlusPlus => {
                    let hi = self.bump().span;
                    let span = e.span.to(hi);
                    e = self.expr_node(ExprKind::PostIncDec(Box::new(e), true), span);
                }
                Tok::MinusMinus => {
                    let hi = self.bump().span;
                    let span = e.span.to(hi);
                    e = self.expr_node(ExprKind::PostIncDec(Box::new(e), false), span);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, CError> {
        let span = self.peek_span();
        match self.peek().clone() {
            Tok::IntLit(n) => {
                self.bump();
                Ok(self.expr_node(ExprKind::IntLit(n), span))
            }
            Tok::CharLit(c) => {
                self.bump();
                Ok(self.expr_node(ExprKind::CharLit(c), span))
            }
            Tok::StrLit(s) => {
                self.bump();
                Ok(self.expr_node(ExprKind::StrLit(s), span))
            }
            Tok::Ident(x) => {
                self.bump();
                Ok(self.expr_node(ExprKind::Ident(x), span))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(CError::at(
                span,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Item;

    fn ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {src}"))
    }

    #[test]
    fn parses_simple_function() {
        let p = ok("int add(int a, int b) { return a + b; }");
        let f = p.function("add").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, CTy::int());
    }

    #[test]
    fn parses_pointer_declarations() {
        let p = ok("const int *x; int * const y; char **argv;");
        let tys: Vec<String> = p
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Global { ty, .. } => Some(ty.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(
            tys,
            vec![
                "ptr(const int)",
                "const ptr(int)",
                "ptr(ptr(char))"
            ]
        );
    }

    #[test]
    fn parses_typedef_as_macro_expansion() {
        // §4.2: "typedef int *ip; ip c, d;" — c and d share no qualifiers.
        let p = ok("typedef int *ip; ip c, d;");
        let globals: Vec<&Item> = p
            .items
            .iter()
            .filter(|i| matches!(i, Item::Global { .. }))
            .collect();
        assert_eq!(globals.len(), 2);
        for g in globals {
            if let Item::Global { ty, .. } = g {
                assert_eq!(ty.to_string(), "ptr(int)");
            }
        }
    }

    #[test]
    fn parses_struct_definition_and_use() {
        let p = ok("struct st { int x; char *name; }; struct st a, b;");
        let structs = p.structs();
        let fields = structs["st"];
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[1].1.to_string(), "ptr(char)");
    }

    #[test]
    fn parses_prototypes_and_varargs() {
        let p = ok("extern int printf(const char *fmt, ...); int puts(const char *s);");
        let protos: Vec<&Item> = p
            .items
            .iter()
            .filter(|i| matches!(i, Item::Proto { .. }))
            .collect();
        assert_eq!(protos.len(), 2);
        if let Item::Proto { sig, .. } = protos[0] {
            assert!(sig.varargs);
            assert_eq!(sig.params[0].to_string(), "ptr(const char)");
        }
    }

    #[test]
    fn parses_control_flow() {
        ok("int f(int n) {
              int s = 0;
              for (int i = 0; i < n; i++) { s += i; }
              while (s > 100) s--;
              do { s++; } while (s < 10);
              if (s) return s; else return -s;
           }");
    }

    #[test]
    fn parses_expressions() {
        ok("int g(int *p, int n) {
              int x = p[n] + *p * 2;
              x = n ? x : -x;
              x <<= 2; x |= 1; x &= ~n;
              return (int)x + sizeof(int) + sizeof x;
           }");
    }

    #[test]
    fn parses_member_access() {
        ok("struct point { int x; int y; };
            int h(struct point *p, struct point q) {
              return p->x + q.y;
            }");
    }

    #[test]
    fn parses_function_pointer_declarator() {
        let p = ok("int (*handler)(int);");
        if let Item::Global { ty, .. } = &p.items[0] {
            assert_eq!(ty.to_string(), "ptr(fn(int) -> int)");
        } else {
            panic!("expected global");
        }
    }

    #[test]
    fn parses_arrays() {
        let p = ok("char buf[128]; int matrix[4][8];");
        if let Item::Global { ty, .. } = &p.items[0] {
            assert_eq!(ty.to_string(), "array[128](char)");
        }
        if let Item::Global { ty, .. } = &p.items[1] {
            assert_eq!(ty.to_string(), "array[4](array[8](int))");
        }
    }

    #[test]
    fn parses_enum() {
        let p = ok("enum color { RED, GREEN = 5, BLUE }; enum color c;");
        let e = p
            .items
            .iter()
            .find_map(|i| match i {
                Item::EnumDef { consts, .. } => Some(consts.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            e,
            vec![
                ("RED".to_owned(), 0),
                ("GREEN".to_owned(), 5),
                ("BLUE".to_owned(), 6)
            ]
        );
    }

    #[test]
    fn parses_string_and_aggregate_initializers() {
        ok("char *msg = \"hello\"; int xs[3] = {1, 2, 3};");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("int f( {").is_err());
        assert!(parse("int ;x").is_err());
        assert!(parse("bogus_type x;").is_err());
    }

    #[test]
    fn parses_switch_and_goto() {
        let p = ok("int classify(int c) {
              int r = 0;
              switch (c) {
                case 'a': r = 1; break;
                case -1: r = 2; break;
                default: r = 3; break;
              }
              if (r == 3) goto out;
              r++;
            out:
              return r;
            }");
        assert!(p.function("classify").is_some());
        assert!(parse("int f(int c) { switch (c) { r = 1; } }").is_err(),
            "statement before first case label is rejected");
    }

    #[test]
    fn switch_with_enum_case_values() {
        ok("enum color { RED, BLUE };
            int f(int c) { switch (c) { case RED: return 1; case BLUE: return 2; default: return 0; } }");
    }

    #[test]
    fn paper_section_4_1_example() {
        // int x; const int y; x = y;
        let p = ok("int x; const int y; int main(void) { x = y; return 0; }");
        assert!(p.function("main").is_some());
    }
}
