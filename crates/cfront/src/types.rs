//! C types for the subset front end, following the paper's §4.1 grammar
//! `CTyp ::= Q int | Q ptr(CTyp)` generalized with arrays, functions and
//! structs. Every type level carries a source `const` flag.

use std::fmt;

/// Scalar base types (all analyzed alike; the distinctions only matter
/// for parsing and pretty-printing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// `void` (only meaningful as a return type or behind a pointer).
    Void,
    /// `char` / `signed char` / `unsigned char`.
    Char,
    /// `short` and friends.
    Short,
    /// `int` (and `unsigned`).
    Int,
    /// `long`, `long long`, and friends.
    Long,
    /// `float`.
    Float,
    /// `double`.
    Double,
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scalar::Void => "void",
            Scalar::Char => "char",
            Scalar::Short => "short",
            Scalar::Int => "int",
            Scalar::Long => "long",
            Scalar::Float => "float",
            Scalar::Double => "double",
        })
    }
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnTy {
    /// Return type.
    pub ret: CTy,
    /// Parameter types in order.
    pub params: Vec<CTy>,
    /// Whether the parameter list ends with `...`.
    pub varargs: bool,
}

/// A C type: a `const` flag plus a constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CTy {
    /// Whether this level is declared `const`.
    pub is_const: bool,
    /// The constructor.
    pub kind: CTyKind,
}

/// C type constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTyKind {
    /// A scalar.
    Scalar(Scalar),
    /// Pointer to a type.
    Ptr(Box<CTy>),
    /// Array with optional length (decays to pointer in r-positions).
    Array(Box<CTy>, Option<u64>),
    /// A struct, referenced by name (fields live in the program table).
    Struct(String),
    /// A function type (from declarators; used for prototypes and
    /// function pointers).
    Func(Box<FnTy>),
}

impl CTy {
    /// A non-const scalar.
    #[must_use]
    pub fn scalar(s: Scalar) -> CTy {
        CTy {
            is_const: false,
            kind: CTyKind::Scalar(s),
        }
    }

    /// Plain `int`.
    #[must_use]
    pub fn int() -> CTy {
        CTy::scalar(Scalar::Int)
    }

    /// Plain `char`.
    #[must_use]
    pub fn char_() -> CTy {
        CTy::scalar(Scalar::Char)
    }

    /// Plain `void`.
    #[must_use]
    pub fn void() -> CTy {
        CTy::scalar(Scalar::Void)
    }

    /// Pointer to `self` (non-const pointer).
    #[must_use]
    pub fn ptr_to(self) -> CTy {
        CTy {
            is_const: false,
            kind: CTyKind::Ptr(Box::new(self)),
        }
    }

    /// A copy of `self` with the `const` flag set.
    #[must_use]
    pub fn with_const(mut self) -> CTy {
        self.is_const = true;
        self
    }

    /// Whether the type is `void`.
    #[must_use]
    pub fn is_void(&self) -> bool {
        matches!(self.kind, CTyKind::Scalar(Scalar::Void))
    }

    /// Structural nesting depth of the type (1 for a scalar). The parser
    /// caps this at construction time, so every later recursion over a
    /// type spine (θ translation, unification, printing) is bounded.
    #[must_use]
    pub fn depth(&self) -> usize {
        match &self.kind {
            CTyKind::Scalar(_) | CTyKind::Struct(_) => 1,
            CTyKind::Ptr(inner) | CTyKind::Array(inner, _) => 1 + inner.depth(),
            CTyKind::Func(f) => {
                let params = f.params.iter().map(CTy::depth).max().unwrap_or(0);
                1 + f.ret.depth().max(params)
            }
        }
    }

    /// Whether the type is any pointer (or array, which decays).
    #[must_use]
    pub fn is_pointerish(&self) -> bool {
        matches!(self.kind, CTyKind::Ptr(_) | CTyKind::Array(..))
    }

    /// The pointee (for pointers and arrays).
    #[must_use]
    pub fn pointee(&self) -> Option<&CTy> {
        match &self.kind {
            CTyKind::Ptr(t) | CTyKind::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Array-to-pointer decay for r-value positions.
    #[must_use]
    pub fn decayed(&self) -> CTy {
        match &self.kind {
            CTyKind::Array(t, _) => CTy {
                is_const: false,
                kind: CTyKind::Ptr(t.clone()),
            },
            _ => self.clone(),
        }
    }

    /// The number of pointer levels (each is an "interesting" const
    /// position in the paper's §4.4 counting).
    #[must_use]
    pub fn pointer_depth(&self) -> usize {
        match &self.kind {
            CTyKind::Ptr(t) | CTyKind::Array(t, _) => 1 + t.pointer_depth(),
            _ => 0,
        }
    }
}

impl fmt::Display for CTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_const {
            f.write_str("const ")?;
        }
        match &self.kind {
            CTyKind::Scalar(s) => write!(f, "{s}"),
            CTyKind::Ptr(t) => write!(f, "ptr({t})"),
            CTyKind::Array(t, Some(n)) => write!(f, "array[{n}]({t})"),
            CTyKind::Array(t, None) => write!(f, "array({t})"),
            CTyKind::Struct(name) => write!(f, "struct {name}"),
            CTyKind::Func(ft) => {
                write!(f, "fn(")?;
                for (i, p) in ft.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                if ft.varargs {
                    if !ft.params.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "...")?;
                }
                write!(f, ") -> {}", ft.ret)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_builders() {
        let t = CTy::int().with_const().ptr_to();
        assert_eq!(t.to_string(), "ptr(const int)");
        assert!(t.is_pointerish());
        assert_eq!(t.pointer_depth(), 1);
        assert_eq!(t.pointee().unwrap().to_string(), "const int");
    }

    #[test]
    fn array_decay() {
        let arr = CTy {
            is_const: false,
            kind: CTyKind::Array(Box::new(CTy::char_()), Some(16)),
        };
        assert_eq!(arr.to_string(), "array[16](char)");
        assert_eq!(arr.decayed().to_string(), "ptr(char)");
        assert_eq!(arr.pointer_depth(), 1);
    }

    #[test]
    fn double_pointer_depth() {
        let t = CTy::char_().ptr_to().ptr_to();
        assert_eq!(t.pointer_depth(), 2);
    }

    #[test]
    fn void_checks() {
        assert!(CTy::void().is_void());
        assert!(!CTy::int().is_void());
    }
}
