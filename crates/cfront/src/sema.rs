//! Semantic analysis: scopes, symbol resolution, and the C type of every
//! expression.
//!
//! The analysis is deliberately permissive in the places the paper calls
//! out (§4.2): unknown functions are implicitly declared (`int f(...)`,
//! a conservative "library" signature), calls may pass extra arguments
//! ("we simply ignore extra arguments"), and casts always succeed. It is
//! strict about the things qualifier inference needs: every identifier
//! must resolve and member accesses must name real struct fields.

use std::collections::HashMap;

use crate::ast::{
    BinOp, Block, Expr, ExprKind, FnDef, Item, Program, Stmt, UnOp,
};
use crate::error::CError;
use crate::types::{CTy, CTyKind, FnTy, Scalar};

/// What an identifier refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// A local variable or parameter of the named function.
    Local {
        /// The enclosing function.
        func: String,
        /// The variable name.
        name: String,
    },
    /// A global variable.
    Global(String),
    /// A defined or declared function.
    Function(String),
    /// An enum constant with its value.
    EnumConst(i64),
}

/// The result of semantic analysis.
#[derive(Debug, Default)]
pub struct Sema {
    /// The C type of every expression node (r-value types are *not*
    /// array-decayed here; consumers call [`CTy::decayed`] as needed).
    pub expr_ty: HashMap<u32, CTy>,
    /// Whether each expression is an l-value.
    pub lvalue: HashMap<u32, bool>,
    /// What each identifier expression resolved to.
    pub resolution: HashMap<u32, Resolution>,
    /// Struct tag → fields.
    pub structs: HashMap<String, Vec<(String, CTy)>>,
    /// Every function signature in the program (defined and declared).
    pub signatures: HashMap<String, FnTy>,
    /// Names of *defined* functions (the rest are library functions; the
    /// analysis treats their unannotated pointer parameters as
    /// conservatively non-const, §4.2).
    pub defined: Vec<String>,
    /// Global variable types.
    pub globals: HashMap<String, CTy>,
    /// Functions that were called but never declared (implicitly
    /// `int f(...)`).
    pub implicit_functions: Vec<String>,
}

impl Sema {
    /// The type of expression `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` does not belong to the analyzed program.
    #[must_use]
    pub fn ty(&self, e: &Expr) -> &CTy {
        &self.expr_ty[&e.id]
    }

    /// Whether `e` is an l-value.
    #[must_use]
    pub fn is_lvalue(&self, e: &Expr) -> bool {
        self.lvalue.get(&e.id).copied().unwrap_or(false)
    }

    /// Whether `name` is a defined (analyzable) function.
    #[must_use]
    pub fn is_defined(&self, name: &str) -> bool {
        self.defined.iter().any(|d| d == name)
    }
}

/// Pass 1: collect type-level and signature-level information. This
/// pass is total — a malformed body cannot fail it.
fn collect_decls(prog: &Program) -> (Sema, HashMap<String, i64>) {
    let mut sema = Sema::default();
    let mut enum_consts: HashMap<String, i64> = HashMap::new();
    for item in &prog.items {
        match item {
            Item::StructDef { name, fields, .. } => {
                sema.structs.insert(name.clone(), fields.clone());
            }
            Item::EnumDef { consts, .. } => {
                for (n, v) in consts {
                    enum_consts.insert(n.clone(), *v);
                }
            }
            Item::Global { name, ty, .. } => {
                sema.globals.insert(name.clone(), ty.clone());
            }
            Item::Func(f) => {
                sema.signatures.insert(f.name.clone(), f.sig());
                sema.defined.push(f.name.clone());
            }
            Item::Proto { name, sig, .. } => {
                sema.signatures.entry(name.clone()).or_insert(sig.clone());
            }
            Item::Typedef { .. } => {}
        }
    }
    (sema, enum_consts)
}

/// Analyzes a parsed program.
///
/// # Errors
///
/// Returns [`CError`] for unresolved identifiers, unknown struct fields,
/// or uses of non-struct values as structs.
pub fn analyze(prog: &Program) -> Result<Sema, CError> {
    let _span = qual_obs::span("sema");
    let (mut sema, enum_consts) = collect_decls(prog);

    // Pass 2: type every function body and global initializer.
    let mut cx = Cx {
        sema: &mut sema,
        enum_consts: &enum_consts,
        scopes: Vec::new(),
        current_fn: String::new(),
    };
    for item in &prog.items {
        match item {
            Item::Func(f) => cx.check_fn(f)?,
            Item::Global { init: Some(e), .. } => {
                cx.current_fn.clear();
                cx.scopes.clear();
                cx.expr(e)?;
            }
            _ => {}
        }
    }
    Ok(sema)
}

/// Semantic analysis with per-function fault isolation.
#[derive(Debug, Default)]
pub struct RecoveredSema {
    /// The analysis of everything that checked.
    pub sema: Sema,
    /// Functions whose bodies failed analysis, with the error. They are
    /// removed from [`Sema::defined`] (their signatures remain, so calls
    /// to them resolve and are treated like library calls).
    pub failed_functions: Vec<(String, CError)>,
    /// Globals whose initializers failed analysis, with the error.
    pub failed_globals: Vec<(String, CError)>,
}

/// Like [`analyze`], but a function body (or global initializer) that
/// fails is reported and excluded instead of aborting the whole unit.
///
/// Callers that feed the result to qualifier inference must also prune
/// the program ([`Program::demote_to_proto`] /
/// [`Program::drop_global_init`]): a failed body has incomplete
/// expression typings, so the engine must not walk it.
#[must_use]
pub fn analyze_with_recovery(prog: &Program) -> RecoveredSema {
    let _span = qual_obs::span("sema");
    let (mut sema, enum_consts) = collect_decls(prog);
    let mut failed_functions = Vec::new();
    let mut failed_globals = Vec::new();

    let mut cx = Cx {
        sema: &mut sema,
        enum_consts: &enum_consts,
        scopes: Vec::new(),
        current_fn: String::new(),
    };
    for item in &prog.items {
        match item {
            Item::Func(f) => {
                if let Err(e) = cx.check_fn(f) {
                    failed_functions.push((f.name.clone(), e));
                }
            }
            Item::Global {
                name,
                init: Some(e),
                ..
            } => {
                cx.current_fn.clear();
                cx.scopes.clear();
                if let Err(e) = cx.expr(e) {
                    failed_globals.push((name.clone(), e));
                }
            }
            _ => {}
        }
    }
    // A failed function is no longer "defined": inference skips its
    // body and poisons its signature like any other library function.
    sema.defined
        .retain(|d| !failed_functions.iter().any(|(n, _)| n == d));
    RecoveredSema {
        sema,
        failed_functions,
        failed_globals,
    }
}

struct Cx<'a> {
    sema: &'a mut Sema,
    enum_consts: &'a HashMap<String, i64>,
    scopes: Vec<HashMap<String, CTy>>,
    current_fn: String,
}

impl Cx<'_> {
    fn check_fn(&mut self, f: &FnDef) -> Result<(), CError> {
        self.current_fn = f.name.clone();
        self.scopes.clear();
        let mut top = HashMap::new();
        for (name, ty) in &f.params {
            top.insert(name.clone(), ty.decayed());
        }
        self.scopes.push(top);
        self.block(&f.body)?;
        self.scopes.pop();
        Ok(())
    }

    fn block(&mut self, b: &Block) -> Result<(), CError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CError> {
        match s {
            Stmt::Decl { name, ty, init, .. } => {
                if let Some(e) = init {
                    self.expr(e)?;
                }
                self.scopes
                    .last_mut()
                    .expect("scope stack nonempty")
                    .insert(name.clone(), ty.clone());
                Ok(())
            }
            Stmt::Expr(e) => self.expr(e).map(|_| ()),
            Stmt::If { cond, then, els } => {
                self.expr(cond)?;
                self.block(then)?;
                if let Some(b) = els {
                    self.block(b)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                self.expr(cond)?;
                self.block(body)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(s) = init {
                    self.stmt(s)?;
                }
                if let Some(e) = cond {
                    self.expr(e)?;
                }
                if let Some(e) = step {
                    self.expr(e)?;
                }
                self.block(body)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Switch { cond, arms } => {
                self.expr(cond)?;
                for arm in arms {
                    self.block(&arm.body)?;
                }
                Ok(())
            }
            Stmt::Label(_, inner) => self.stmt(inner),
            Stmt::Goto(..) => Ok(()),
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    self.expr(e)?;
                }
                Ok(())
            }
            Stmt::Break(_) | Stmt::Continue(_) => Ok(()),
            Stmt::Block(b) => self.block(b),
        }
    }

    fn lookup_local(&self, name: &str) -> Option<&CTy> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn record(&mut self, e: &Expr, ty: CTy, lvalue: bool) -> CTy {
        self.sema.expr_ty.insert(e.id, ty.clone());
        self.sema.lvalue.insert(e.id, lvalue);
        ty
    }

    fn field_of(&self, ty: &CTy, field: &str, e: &Expr) -> Result<CTy, CError> {
        let CTyKind::Struct(tag) = &ty.kind else {
            return Err(CError::at(
                e.span,
                format!("member access on non-struct type `{ty}`"),
            ));
        };
        let fields = self.sema.structs.get(tag).ok_or_else(|| {
            CError::at(e.span, format!("unknown struct `{tag}`"))
        })?;
        fields
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| {
                CError::at(
                    e.span,
                    format!("struct `{tag}` has no field `{field}`"),
                )
            })
    }

    fn expr(&mut self, e: &Expr) -> Result<CTy, CError> {
        let (ty, lv) = match &e.kind {
            ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::Sizeof => {
                (CTy::int(), false)
            }
            ExprKind::StrLit(_) => {
                // C90 string literals have type char[] (writable), which
                // keeps correct-but-crusty programs type-correct; the
                // qualifier analysis decides constness separately.
                (CTy::char_().ptr_to(), false)
            }
            ExprKind::Ident(name) => {
                if let Some(ty) = self.lookup_local(name) {
                    let ty = ty.clone();
                    self.sema.resolution.insert(
                        e.id,
                        Resolution::Local {
                            func: self.current_fn.clone(),
                            name: name.clone(),
                        },
                    );
                    (ty, true)
                } else if let Some(ty) = self.sema.globals.get(name) {
                    let ty = ty.clone();
                    self.sema
                        .resolution
                        .insert(e.id, Resolution::Global(name.clone()));
                    (ty, true)
                } else if let Some(v) = self.enum_consts.get(name) {
                    self.sema
                        .resolution
                        .insert(e.id, Resolution::EnumConst(*v));
                    (CTy::int(), false)
                } else if let Some(sig) = self.sema.signatures.get(name) {
                    let ty = CTy {
                        is_const: false,
                        kind: CTyKind::Func(Box::new(sig.clone())),
                    };
                    self.sema
                        .resolution
                        .insert(e.id, Resolution::Function(name.clone()));
                    (ty, false)
                } else {
                    return Err(CError::at(
                        e.span,
                        format!("unresolved identifier `{name}`"),
                    ));
                }
            }
            ExprKind::Unary(op, inner) => {
                let it = self.expr(inner)?;
                match op {
                    UnOp::Deref => {
                        let d = it.decayed();
                        let pointee = d.pointee().cloned().ok_or_else(|| {
                            CError::at(e.span, format!("dereference of non-pointer `{it}`"))
                        })?;
                        (pointee, true)
                    }
                    UnOp::Addr => (it.decayed_addr(), false),
                    UnOp::Neg | UnOp::Not | UnOp::BitNot => (CTy::int(), false),
                    UnOp::PreInc | UnOp::PreDec => (it.decayed(), false),
                }
            }
            ExprKind::PostIncDec(inner, _) => {
                let it = self.expr(inner)?;
                (it.decayed(), false)
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.expr(a)?.decayed();
                let tb = self.expr(b)?.decayed();
                let ty = match op {
                    BinOp::Add | BinOp::Sub => {
                        // Pointer arithmetic keeps the pointer type.
                        if ta.is_pointerish() {
                            ta
                        } else if tb.is_pointerish() {
                            tb
                        } else {
                            arith(&ta, &tb)
                        }
                    }
                    BinOp::Mul | BinOp::Div | BinOp::Rem => arith(&ta, &tb),
                    _ => CTy::int(),
                };
                (ty, false)
            }
            ExprKind::Assign(op, lhs, rhs) => {
                let tl = self.expr(lhs)?;
                self.expr(rhs)?;
                let _ = op;
                (tl, false)
            }
            ExprKind::Call(callee, args) => {
                for a in args {
                    self.expr(a)?;
                }
                let ret = match &callee.kind {
                    ExprKind::Ident(name) if self.lookup_local(name).is_none()
                        && !self.sema.globals.contains_key(name) =>
                    {
                        // Function call by name; implicit declaration if
                        // unknown (§4.2's conservative library treatment).
                        let sig = match self.sema.signatures.get(name) {
                            Some(s) => s.clone(),
                            None => {
                                let sig = FnTy {
                                    ret: CTy::int(),
                                    params: Vec::new(),
                                    varargs: true,
                                };
                                self.sema
                                    .signatures
                                    .insert(name.clone(), sig.clone());
                                self.sema.implicit_functions.push(name.clone());
                                sig
                            }
                        };
                        self.sema
                            .resolution
                            .insert(callee.id, Resolution::Function(name.clone()));
                        self.record(
                            callee,
                            CTy {
                                is_const: false,
                                kind: CTyKind::Func(Box::new(sig.clone())),
                            },
                            false,
                        );
                        sig.ret
                    }
                    _ => {
                        // Calling through an expression (function pointer).
                        let tc = self.expr(callee)?.decayed();
                        match &tc.kind {
                            CTyKind::Func(sig) => sig.ret.clone(),
                            CTyKind::Ptr(inner) => match &inner.kind {
                                CTyKind::Func(sig) => sig.ret.clone(),
                                _ => CTy::int(),
                            },
                            _ => CTy::int(),
                        }
                    }
                };
                (ret, false)
            }
            ExprKind::Index(base, idx) => {
                let tb = self.expr(base)?.decayed();
                self.expr(idx)?;
                let elem = tb.pointee().cloned().ok_or_else(|| {
                    CError::at(e.span, format!("indexing non-pointer `{tb}`"))
                })?;
                (elem, true)
            }
            ExprKind::Member(base, field) => {
                let tb = self.expr(base)?;
                let lv = self.sema.is_lvalue(base);
                (self.field_of(&tb, field, e)?, lv)
            }
            ExprKind::PMember(base, field) => {
                let tb = self.expr(base)?.decayed();
                let pointee = tb.pointee().cloned().ok_or_else(|| {
                    CError::at(e.span, format!("`->` on non-pointer `{tb}`"))
                })?;
                (self.field_of(&pointee, field, e)?, true)
            }
            ExprKind::Cast(ty, inner) => {
                self.expr(inner)?;
                (ty.clone(), false)
            }
            ExprKind::Cond(c, t, f) => {
                self.expr(c)?;
                let tt = self.expr(t)?;
                self.expr(f)?;
                (tt.decayed(), false)
            }
            ExprKind::Comma(a, b) => {
                self.expr(a)?;
                let tb = self.expr(b)?;
                (tb, false)
            }
        };
        Ok(self.record(e, ty, lv))
    }
}

fn arith(a: &CTy, b: &CTy) -> CTy {
    // Usual arithmetic conversions, coarsened.
    for s in [Scalar::Double, Scalar::Float, Scalar::Long] {
        if a.kind == CTyKind::Scalar(s) || b.kind == CTyKind::Scalar(s) {
            return CTy::scalar(s);
        }
    }
    CTy::int()
}

impl CTy {
    /// `&e`: address of a possibly-array value (arrays of T give ptr(T)
    /// here rather than ptr(array), which is all the analysis needs).
    #[must_use]
    fn decayed_addr(&self) -> CTy {
        self.clone().ptr_to()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyzed(src: &str) -> (Program, Sema) {
        let p = parse(src).expect("parses");
        let s = analyze(&p).expect("analyzes");
        (p, s)
    }

    /// Finds the type of the first expression of the given rendered form.
    fn all_types(sema: &Sema) -> Vec<String> {
        let mut v: Vec<String> = sema.expr_ty.values().map(ToString::to_string).collect();
        v.sort();
        v
    }

    #[test]
    fn types_parameters_and_locals() {
        let (_, s) = analyzed(
            "int f(int *p) {
               int x = *p;
               return x;
             }",
        );
        assert!(all_types(&s).contains(&"ptr(int)".to_owned()));
        assert!(all_types(&s).contains(&"int".to_owned()));
    }

    #[test]
    fn string_literals_are_char_ptr() {
        let (_, s) = analyzed("char *f(void) { return (char *)\"hi\"; }");
        assert!(all_types(&s).contains(&"ptr(char)".to_owned()));
    }

    #[test]
    fn member_access_types() {
        let (_, s) = analyzed(
            "struct st { int x; char *name; };
             char *f(struct st *p, struct st v) { v.x = 1; return p->name; }",
        );
        assert!(all_types(&s).contains(&"ptr(char)".to_owned()));
    }

    #[test]
    fn implicit_function_declaration() {
        let (_, s) = analyzed("int f(void) { return mystery(1, 2); }");
        assert_eq!(s.implicit_functions, vec!["mystery".to_owned()]);
        assert!(s.signatures.contains_key("mystery"));
        assert!(!s.is_defined("mystery"));
        assert!(s.is_defined("f"));
    }

    #[test]
    fn array_indexing_and_decay() {
        let (_, s) = analyzed(
            "int sum(int *xs, int n) {
               int t = 0;
               for (int i = 0; i < n; i++) t += xs[i];
               return t;
             }",
        );
        assert!(all_types(&s).contains(&"int".to_owned()));
    }

    #[test]
    fn pointer_arithmetic_keeps_pointer() {
        let (p, s) = analyzed("char *next(char *s) { return s + 1; }");
        let f = p.function("next").unwrap();
        let stmt = &f.body.stmts[0];
        assert!(
            matches!(stmt, Stmt::Return(Some(_), _)),
            "expected a return statement"
        );
        if let Stmt::Return(Some(e), _) = stmt {
            assert_eq!(s.ty(e).to_string(), "ptr(char)");
        }
    }

    #[test]
    fn errors_on_unresolved() {
        let p = parse("int f(void) { return nope; }").unwrap();
        assert!(analyze(&p).is_err());
        let p = parse("struct s { int x; }; int f(struct s v) { return v.y; }").unwrap();
        assert!(analyze(&p).is_err());
        let p = parse("int f(int x) { return *x; }").unwrap();
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn enum_constants_resolve() {
        let (_, s) = analyzed("enum e { A, B }; int f(void) { return A + B; }");
        assert!(s
            .resolution
            .values()
            .any(|r| matches!(r, Resolution::EnumConst(0))));
    }

    #[test]
    fn lvalueness() {
        let (p, s) = analyzed("int f(int *p) { return *p + 1; }");
        let f = p.function("f").unwrap();
        if let Stmt::Return(Some(e), _) = &f.body.stmts[0] {
            // `*p + 1` is not an lvalue but `*p` inside is.
            assert!(!s.is_lvalue(e));
            if let ExprKind::Binary(_, a, _) = &e.kind {
                assert!(s.is_lvalue(a));
            }
        }
    }

    #[test]
    fn recovery_isolates_failing_functions() {
        let mut p = parse(
            "int ok1(int x) { return x; }
             int bad(void) { return nope; }
             int ok2(int *p) { return *p; }
             int g = also_nope;",
        )
        .unwrap();
        let r = analyze_with_recovery(&p);
        assert_eq!(r.failed_functions.len(), 1);
        assert_eq!(r.failed_functions[0].0, "bad");
        assert_eq!(r.failed_globals.len(), 1);
        assert_eq!(r.failed_globals[0].0, "g");
        assert!(r.sema.is_defined("ok1"));
        assert!(r.sema.is_defined("ok2"));
        // `bad` keeps a signature (calls resolve) but is not defined.
        assert!(!r.sema.is_defined("bad"));
        assert!(r.sema.signatures.contains_key("bad"));

        // Pruning removes the unanalyzable bodies from the program.
        for (name, _) in &r.failed_functions {
            p.demote_to_proto(name);
        }
        assert!(p.function("bad").is_none());
        assert!(p
            .items
            .iter()
            .any(|i| matches!(i, Item::Proto { name, .. } if name == "bad")));
        p.drop_global_init("g");
        assert!(p.items.iter().any(
            |i| matches!(i, Item::Global { name, init: None, .. } if name == "g")
        ));
    }

    #[test]
    fn recovery_is_identity_on_clean_programs() {
        let src = "struct st { int x; };
                   int f(struct st *p) { return p->x; }";
        let p = parse(src).unwrap();
        let strict = analyze(&p).unwrap();
        let r = analyze_with_recovery(&p);
        assert!(r.failed_functions.is_empty());
        assert!(r.failed_globals.is_empty());
        assert_eq!(r.sema.defined, strict.defined);
        assert_eq!(r.sema.expr_ty.len(), strict.expr_ty.len());
    }

    #[test]
    fn globals_resolve() {
        let (_, s) = analyzed("int g; int f(void) { g = 1; return g; }");
        assert!(s
            .resolution
            .values()
            .any(|r| matches!(r, Resolution::Global(_))));
    }
}
