//! Pretty-printer: renders a [`Program`] back to compilable C source.
//!
//! This is the other half of the paper's goal for the const-inference
//! tool: "Ultimately we would like the analysis result to be the text of
//! the original C program with some extra const qualifiers inserted"
//! (§4.2). `qual-constinfer` rewrites the declaration types and calls
//! this printer; the round-trip property (print → parse → analyze gives
//! the same result) is tested in the constinfer crate.

use std::fmt::Write as _;

use crate::ast::{
    AssignOp, BinOp, Block, Expr, ExprKind, FnDef, Item, Program, Stmt, Storage, UnOp,
};
use crate::types::{CTy, CTyKind, FnTy};

/// Renders a whole program.
#[must_use]
pub fn render_program(p: &Program) -> String {
    let mut out = String::new();
    for item in &p.items {
        render_item(item, &mut out);
        out.push('\n');
    }
    out
}

/// Renders one item to its canonical source text. The pretty-printer is
/// deterministic, so this string is a content fingerprint of the item:
/// two items render identically iff they are structurally identical up
/// to spans — which is exactly the equivalence the incremental cache
/// wants to hash.
#[must_use]
pub fn render_item_text(item: &Item) -> String {
    let mut out = String::new();
    render_item(item, &mut out);
    out
}

/// Renders one C declaration: base type + declarator around `name`
/// (the inverse of declarator parsing, handling pointers with per-level
/// `const`, arrays, and function declarators).
#[must_use]
pub fn render_decl(ty: &CTy, name: &str) -> String {
    let (base, decl) = split_decl(ty, name.to_owned());
    if decl.is_empty() {
        base
    } else {
        format!("{base} {decl}")
    }
}

/// Splits a type into its base-specifier string and the declarator text.
fn split_decl(ty: &CTy, inner: String) -> (String, String) {
    match &ty.kind {
        CTyKind::Scalar(s) => {
            let cq = if ty.is_const { "const " } else { "" };
            (format!("{cq}{s}"), inner)
        }
        CTyKind::Struct(tag) => {
            let cq = if ty.is_const { "const " } else { "" };
            (format!("{cq}struct {tag}"), inner)
        }
        CTyKind::Ptr(pointee) => {
            let cq = match (ty.is_const, inner.is_empty()) {
                (true, true) => " const",
                (true, false) => " const ",
                (false, _) => "",
            };
            let needs_paren = matches!(pointee.kind, CTyKind::Array(..) | CTyKind::Func(_));
            let wrapped = format!("*{cq}{inner}");
            let wrapped = if needs_paren {
                format!("({wrapped})")
            } else {
                wrapped
            };
            split_decl(pointee, wrapped)
        }
        CTyKind::Array(elem, n) => {
            let dim = n.map_or(String::new(), |v| v.to_string());
            split_decl(elem, format!("{inner}[{dim}]"))
        }
        CTyKind::Func(ft) => {
            let params = render_params(ft);
            split_decl(&ft.ret, format!("{inner}({params})"))
        }
    }
}

fn render_params(ft: &FnTy) -> String {
    if ft.params.is_empty() && !ft.varargs {
        return "void".to_owned();
    }
    let mut s = String::new();
    for (i, p) in ft.params.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&render_decl(p, ""));
    }
    if ft.varargs {
        if !ft.params.is_empty() {
            s.push_str(", ");
        }
        s.push_str("...");
    }
    s
}

fn render_item(item: &Item, out: &mut String) {
    match item {
        Item::Typedef { name, ty, .. } => {
            let _ = writeln!(out, "typedef {};", render_decl(ty, name));
        }
        Item::StructDef { name, fields, .. } => {
            let _ = writeln!(out, "struct {name} {{");
            for (fname, fty) in fields {
                let _ = writeln!(out, "  {};", render_decl(fty, fname));
            }
            out.push_str("};\n");
        }
        Item::EnumDef { name, consts, .. } => {
            let _ = writeln!(out, "enum {name} {{");
            for (cname, v) in consts {
                let _ = writeln!(out, "  {cname} = {v},");
            }
            out.push_str("};\n");
        }
        Item::Global {
            name,
            ty,
            init,
            storage,
            ..
        } => {
            out.push_str(storage_str(*storage));
            out.push_str(&render_decl(ty, name));
            if let Some(e) = init {
                out.push_str(" = ");
                render_expr(e, out);
            }
            out.push_str(";\n");
        }
        Item::Func(f) => render_fn(f, out),
        Item::Proto {
            name,
            sig,
            storage,
            ..
        } => {
            out.push_str(storage_str(*storage));
            let fty = CTy {
                is_const: false,
                kind: CTyKind::Func(Box::new(sig.clone())),
            };
            out.push_str(&render_decl(&fty, name));
            out.push_str(";\n");
        }
    }
}

fn storage_str(s: Storage) -> &'static str {
    match s {
        Storage::None => "",
        Storage::Static => "static ",
        Storage::Extern => "extern ",
    }
}

fn render_fn(f: &FnDef, out: &mut String) {
    out.push_str(storage_str(f.storage));
    out.push_str(&render_decl(&f.ret, ""));
    let _ = write!(out, " {}(", f.name);
    if f.params.is_empty() && !f.varargs {
        out.push_str("void");
    }
    for (i, (pname, pty)) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&render_decl(pty, pname));
    }
    if f.varargs {
        if !f.params.is_empty() {
            out.push_str(", ");
        }
        out.push_str("...");
    }
    out.push_str(") ");
    render_block(&f.body, 0, out);
    out.push('\n');
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_block(b: &Block, level: usize, out: &mut String) {
    out.push_str("{\n");
    for s in &b.stmts {
        render_stmt(s, level + 1, out);
    }
    indent(level, out);
    out.push_str("}\n");
}

fn render_stmt(s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match s {
        Stmt::Decl { name, ty, init, .. } => {
            out.push_str(&render_decl(ty, name));
            if let Some(e) = init {
                out.push_str(" = ");
                render_expr(e, out);
            }
            out.push_str(";\n");
        }
        Stmt::Expr(e) => {
            render_expr(e, out);
            out.push_str(";\n");
        }
        Stmt::If { cond, then, els } => {
            out.push_str("if (");
            render_expr(cond, out);
            out.push_str(") ");
            render_block(then, level, out);
            if let Some(b) = els {
                indent(level, out);
                out.push_str("else ");
                render_block(b, level, out);
            }
        }
        Stmt::While { cond, body } => {
            out.push_str("while (");
            render_expr(cond, out);
            out.push_str(") ");
            render_block(body, level, out);
        }
        Stmt::DoWhile { body, cond } => {
            out.push_str("do ");
            render_block(body, level, out);
            indent(level, out);
            out.push_str("while (");
            render_expr(cond, out);
            out.push_str(");\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("for (");
            match init.as_deref() {
                Some(Stmt::Decl { name, ty, init, .. }) => {
                    out.push_str(&render_decl(ty, name));
                    if let Some(e) = init {
                        out.push_str(" = ");
                        render_expr(e, out);
                    }
                    out.push(';');
                }
                Some(Stmt::Expr(e)) => {
                    render_expr(e, out);
                    out.push(';');
                }
                _ => out.push(';'),
            }
            out.push(' ');
            if let Some(e) = cond {
                render_expr(e, out);
            }
            out.push_str("; ");
            if let Some(e) = step {
                render_expr(e, out);
            }
            out.push_str(") ");
            render_block(body, level, out);
        }
        Stmt::Switch { cond, arms } => {
            out.push_str("switch (");
            render_expr(cond, out);
            out.push_str(") {\n");
            for arm in arms {
                indent(level + 1, out);
                match arm.value {
                    Some(v) => {
                        let _ = writeln!(out, "case {v}:");
                    }
                    None => out.push_str("default:\n"),
                }
                for st in &arm.body.stmts {
                    render_stmt(st, level + 2, out);
                }
                // Arms are parsed as delimited bodies; make fallthrough
                // explicit only when the source didn't already end the
                // arm with a jump.
                if !matches!(
                    arm.body.stmts.last(),
                    Some(Stmt::Break(_) | Stmt::Return(..) | Stmt::Continue(_) | Stmt::Goto(..))
                ) {
                    indent(level + 2, out);
                    out.push_str("break;\n");
                }
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Label(name, inner) => {
            let _ = writeln!(out, "{name}:");
            render_stmt(inner, level, out);
        }
        Stmt::Goto(label, _) => {
            let _ = writeln!(out, "goto {label};");
        }
        Stmt::Return(e, _) => {
            out.push_str("return");
            if let Some(e) = e {
                out.push(' ');
                render_expr(e, out);
            }
            out.push_str(";\n");
        }
        Stmt::Break(_) => out.push_str("break;\n"),
        Stmt::Continue(_) => out.push_str("continue;\n"),
        Stmt::Block(b) => render_block(b, level, out),
    }
}

fn un_op(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "-",
        UnOp::Not => "!",
        UnOp::BitNot => "~",
        UnOp::Deref => "*",
        UnOp::Addr => "&",
        UnOp::PreInc => "++",
        UnOp::PreDec => "--",
    }
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Renders an expression. Subexpressions are parenthesized liberally —
/// the output is for re-analysis, not beauty contests.
fn render_expr(e: &Expr, out: &mut String) {
    match &e.kind {
        ExprKind::IntLit(n) => {
            let _ = write!(out, "{n}");
        }
        ExprKind::CharLit(c) => {
            let _ = write!(out, "{c}");
        }
        ExprKind::StrLit(s) => {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    '\0' => out.push_str("\\0"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        ExprKind::Ident(x) => out.push_str(x),
        ExprKind::Unary(op, a) => {
            out.push('(');
            out.push_str(un_op(*op));
            render_expr(a, out);
            out.push(')');
        }
        ExprKind::PostIncDec(a, inc) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(if *inc { "++" } else { "--" });
            out.push(')');
        }
        ExprKind::Binary(op, a, b) => {
            out.push('(');
            render_expr(a, out);
            let _ = write!(out, " {} ", bin_op(*op));
            render_expr(b, out);
            out.push(')');
        }
        ExprKind::Assign(op, a, b) => {
            out.push('(');
            render_expr(a, out);
            match op {
                AssignOp::Plain => out.push_str(" = "),
                AssignOp::Compound(b_op) => {
                    let _ = write!(out, " {}= ", bin_op(*b_op));
                }
            }
            render_expr(b, out);
            out.push(')');
        }
        ExprKind::Call(f, args) => {
            render_expr(f, out);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(a, out);
            }
            out.push(')');
        }
        ExprKind::Index(a, i) => {
            render_expr(a, out);
            out.push('[');
            render_expr(i, out);
            out.push(']');
        }
        ExprKind::Member(a, f) => {
            render_expr(a, out);
            out.push('.');
            out.push_str(f);
        }
        ExprKind::PMember(a, f) => {
            render_expr(a, out);
            out.push_str("->");
            out.push_str(f);
        }
        ExprKind::Cast(ty, a) => {
            let _ = write!(out, "(({})", render_decl(ty, ""));
            render_expr(a, out);
            out.push(')');
        }
        ExprKind::Cond(c, t, f) => {
            out.push('(');
            render_expr(c, out);
            out.push_str(" ? ");
            render_expr(t, out);
            out.push_str(" : ");
            render_expr(f, out);
            out.push(')');
        }
        ExprKind::Sizeof => out.push_str("sizeof(int)"),
        ExprKind::Comma(a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(", ");
            render_expr(b, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn decl_rendering() {
        use crate::types::Scalar;
        let t = CTy::int().with_const().ptr_to();
        assert_eq!(render_decl(&t, "x"), "const int *x");
        let t = CTy::int().ptr_to().with_const();
        assert_eq!(render_decl(&t, "y"), "int * const y");
        let t = CTy::char_().ptr_to().ptr_to();
        assert_eq!(render_decl(&t, "argv"), "char **argv");
        let arr = CTy {
            is_const: false,
            kind: CTyKind::Array(Box::new(CTy::char_()), Some(16)),
        };
        assert_eq!(render_decl(&arr, "buf"), "char buf[16]");
        let fp = CTy {
            is_const: false,
            kind: CTyKind::Ptr(Box::new(CTy {
                is_const: false,
                kind: CTyKind::Func(Box::new(FnTy {
                    ret: CTy::int(),
                    params: vec![CTy::scalar(Scalar::Int)],
                    varargs: false,
                })),
            })),
        };
        assert_eq!(render_decl(&fp, "handler"), "int (*handler)(int)");
    }

    fn round_trip(src: &str) {
        let p1 = parse(src).expect("original parses");
        let text = render_program(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        let text2 = render_program(&p2);
        assert_eq!(text, text2, "printer not a fixpoint for:\n{src}");
    }

    #[test]
    fn program_round_trips() {
        round_trip(
            "extern int printf(const char *fmt, ...);
             struct st { int x; char *name; };
             int g = 3;
             static char buf[32];
             int reader(const char *s, int n) {
               int acc = 0;
               for (int i = 0; i < n; i++) acc += s[i];
               while (acc > 100) acc--;
               if (acc) return acc; else return -acc;
             }
             int main(void) {
               struct st v;
               v.x = reader(\"hi\\n\", 2);
               printf(\"%d\", v.x);
               do { v.x--; } while (v.x > 0);
               return (int)(v.x ? 1 : 0, 0);
             }",
        );
    }

    #[test]
    fn tricky_declarators_round_trip() {
        round_trip("int (*handler)(int); char *(*gets_like)(char *, int);");
        round_trip("typedef int *ip; int matrix[4][8];");
    }

    #[test]
    fn pointer_expressions_round_trip() {
        round_trip(
            "void f(int *p, char **v) {
               *p = p[1] + 1;
               v[0][2] = 'x';
               p++; --p;
               *p += 3;
             }",
        );
    }
}
