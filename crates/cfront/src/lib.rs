//! A C front end serving as the substrate for the const-inference system
//! of *A Theory of Type Qualifiers* (PLDI 1999), §4.
//!
//! The paper prototyped its qualifier extensions against an ANSI C front
//! end ("The extensions required only trivial modifications", §2.5).
//! This crate provides the analogous substrate: a lexer, a
//! recursive-descent parser for a broad C subset (declarators with
//! per-level `const`, structs, enums, typedefs, arrays, function
//! pointers, full expression and statement grammars, varargs), and a
//! semantic analysis pass ([`sema`]) that resolves every expression to
//! its C type and l-value-ness — exactly what qualifier inference
//! consumes.
//!
//! There is no preprocessor: the analysis is independent of it, and the
//! benchmark generator emits preprocessed sources.
//!
//! ```
//! let src = "int add(int a, int b) { return a + b; }";
//! let program = qual_cfront::parse(src)?;
//! let sema = qual_cfront::sema::analyze(&program)?;
//! assert_eq!(program.functions().count(), 1);
//! # let _ = sema;
//! # Ok::<(), qual_cfront::CError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod types;

pub use ast::{FnDef, Item, Program};
pub use error::CError;
pub use lexer::Span;
pub use parser::{parse, parse_with_recovery, RecoveredParse};
pub use types::{CTy, CTyKind, FnTy, Scalar};
