//! Lexer for the C subset.

use std::fmt;

use crate::error::CError;

/// A byte range in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Start byte (inclusive).
    pub lo: u32,
    /// End byte (exclusive).
    pub hi: u32,
}

impl Span {
    /// Creates a span.
    #[must_use]
    pub fn new(lo: u32, hi: u32) -> Span {
        Span { lo, hi }
    }

    /// Covering span.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// C tokens (subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    IntLit(i64),
    CharLit(i64),
    StrLit(String),
    // keywords
    KwInt,
    KwChar,
    KwLong,
    KwShort,
    KwUnsigned,
    KwSigned,
    KwVoid,
    KwFloat,
    KwDouble,
    KwConst,
    KwStruct,
    KwEnum,
    KwUnion,
    KwTypedef,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    KwStatic,
    KwExtern,
    KwSwitch,
    KwCase,
    KwDefault,
    KwGoto,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Ellipsis,
    Dot,
    Arrow,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AmpAmp,
    PipePipe,
    PlusPlus,
    MinusMinus,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::IntLit(n) => write!(f, "integer `{n}`"),
            Tok::CharLit(c) => write!(f, "char literal `{c}`"),
            Tok::StrLit(_) => write!(f, "string literal"),
            Tok::Eof => write!(f, "end of file"),
            other => write!(f, "`{}`", other.text()),
        }
    }
}

impl Tok {
    fn text(&self) -> &'static str {
        match self {
            Tok::KwInt => "int",
            Tok::KwChar => "char",
            Tok::KwLong => "long",
            Tok::KwShort => "short",
            Tok::KwUnsigned => "unsigned",
            Tok::KwSigned => "signed",
            Tok::KwVoid => "void",
            Tok::KwFloat => "float",
            Tok::KwDouble => "double",
            Tok::KwConst => "const",
            Tok::KwStruct => "struct",
            Tok::KwEnum => "enum",
            Tok::KwUnion => "union",
            Tok::KwTypedef => "typedef",
            Tok::KwIf => "if",
            Tok::KwElse => "else",
            Tok::KwWhile => "while",
            Tok::KwDo => "do",
            Tok::KwFor => "for",
            Tok::KwReturn => "return",
            Tok::KwBreak => "break",
            Tok::KwContinue => "continue",
            Tok::KwSizeof => "sizeof",
            Tok::KwStatic => "static",
            Tok::KwExtern => "extern",
            Tok::KwSwitch => "switch",
            Tok::KwCase => "case",
            Tok::KwDefault => "default",
            Tok::KwGoto => "goto",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Colon => ":",
            Tok::Question => "?",
            Tok::Ellipsis => "...",
            Tok::Dot => ".",
            Tok::Arrow => "->",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Tilde => "~",
            Tok::Bang => "!",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::AmpAmp => "&&",
            Tok::PipePipe => "||",
            Tok::PlusPlus => "++",
            Tok::MinusMinus => "--",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::SlashAssign => "/=",
            Tok::PercentAssign => "%=",
            Tok::AmpAssign => "&=",
            Tok::PipeAssign => "|=",
            Tok::CaretAssign => "^=",
            Tok::ShlAssign => "<<=",
            Tok::ShrAssign => ">>=",
            _ => "?",
        }
    }
}

/// Token plus location.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Its source range.
    pub span: Span,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "int" => Tok::KwInt,
        "char" => Tok::KwChar,
        "long" => Tok::KwLong,
        "short" => Tok::KwShort,
        "unsigned" => Tok::KwUnsigned,
        "signed" => Tok::KwSigned,
        "void" => Tok::KwVoid,
        "float" => Tok::KwFloat,
        "double" => Tok::KwDouble,
        "const" => Tok::KwConst,
        "struct" => Tok::KwStruct,
        "enum" => Tok::KwEnum,
        "union" => Tok::KwUnion,
        "typedef" => Tok::KwTypedef,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "do" => Tok::KwDo,
        "for" => Tok::KwFor,
        "return" => Tok::KwReturn,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        "sizeof" => Tok::KwSizeof,
        "static" => Tok::KwStatic,
        "extern" => Tok::KwExtern,
        "switch" => Tok::KwSwitch,
        "case" => Tok::KwCase,
        "default" => Tok::KwDefault,
        "goto" => Tok::KwGoto,
        _ => return None,
    })
}

/// Tokenizes C source (handles `//` and `/* */` comments; no
/// preprocessor — the paper's analysis is independent of it).
///
/// # Errors
///
/// Returns [`CError`] on unterminated comments/strings or unknown
/// characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, CError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    macro_rules! push {
        ($tok:expr, $lo:expr, $hi:expr) => {
            out.push(SpannedTok {
                tok: $tok,
                span: Span::new($lo as u32, $hi as u32),
            })
        };
    }
    while i < b.len() {
        let lo = i;
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(CError::at(
                            Span::new(start as u32, b.len() as u32),
                            "unterminated block comment",
                        ));
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut val: i64 = 0;
                if c == b'0' && matches!(b.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        val = val.wrapping_mul(16)
                            + i64::from((b[i] as char).to_digit(16).unwrap_or(0));
                        i += 1;
                    }
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        val = val.wrapping_mul(10) + i64::from(b[i] - b'0');
                        i += 1;
                    }
                }
                // Swallow integer suffixes.
                while i < b.len() && matches!(b[i], b'u' | b'U' | b'l' | b'L') {
                    i += 1;
                }
                push!(Tok::IntLit(val), start, i);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                push!(
                    keyword(word).unwrap_or_else(|| Tok::Ident(word.to_owned())),
                    start,
                    i
                );
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut text = String::new();
                loop {
                    if i >= b.len() {
                        return Err(CError::at(
                            Span::new(start as u32, b.len() as u32),
                            "unterminated string literal",
                        ));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            if i + 1 < b.len() {
                                text.push(escape(b[i + 1]));
                                i += 2;
                            } else {
                                i += 1;
                            }
                        }
                        other => {
                            text.push(other as char);
                            i += 1;
                        }
                    }
                }
                push!(Tok::StrLit(text), start, i);
            }
            b'\'' => {
                let start = i;
                i += 1;
                let val = if i < b.len() && b[i] == b'\\' {
                    let v = escape(*b.get(i + 1).unwrap_or(&b'0')) as i64;
                    i += 2;
                    v
                } else if i < b.len() {
                    let v = i64::from(b[i]);
                    i += 1;
                    v
                } else {
                    0
                };
                if i < b.len() && b[i] == b'\'' {
                    i += 1;
                } else {
                    return Err(CError::at(
                        Span::new(start as u32, i as u32),
                        "unterminated char literal",
                    ));
                }
                push!(Tok::CharLit(val), start, i);
            }
            _ => {
                // Punctuation and operators, longest match first.
                let three = src.get(i..i + 3).unwrap_or("");
                let two = src.get(i..i + 2).unwrap_or("");
                let (tok, len) = match three {
                    "..." => (Tok::Ellipsis, 3),
                    "<<=" => (Tok::ShlAssign, 3),
                    ">>=" => (Tok::ShrAssign, 3),
                    _ => match two {
                        "->" => (Tok::Arrow, 2),
                        "<<" => (Tok::Shl, 2),
                        ">>" => (Tok::Shr, 2),
                        "<=" => (Tok::Le, 2),
                        ">=" => (Tok::Ge, 2),
                        "==" => (Tok::EqEq, 2),
                        "!=" => (Tok::NotEq, 2),
                        "&&" => (Tok::AmpAmp, 2),
                        "||" => (Tok::PipePipe, 2),
                        "++" => (Tok::PlusPlus, 2),
                        "--" => (Tok::MinusMinus, 2),
                        "+=" => (Tok::PlusAssign, 2),
                        "-=" => (Tok::MinusAssign, 2),
                        "*=" => (Tok::StarAssign, 2),
                        "/=" => (Tok::SlashAssign, 2),
                        "%=" => (Tok::PercentAssign, 2),
                        "&=" => (Tok::AmpAssign, 2),
                        "|=" => (Tok::PipeAssign, 2),
                        "^=" => (Tok::CaretAssign, 2),
                        _ => match c {
                            b'(' => (Tok::LParen, 1),
                            b')' => (Tok::RParen, 1),
                            b'{' => (Tok::LBrace, 1),
                            b'}' => (Tok::RBrace, 1),
                            b'[' => (Tok::LBracket, 1),
                            b']' => (Tok::RBracket, 1),
                            b';' => (Tok::Semi, 1),
                            b',' => (Tok::Comma, 1),
                            b':' => (Tok::Colon, 1),
                            b'?' => (Tok::Question, 1),
                            b'.' => (Tok::Dot, 1),
                            b'+' => (Tok::Plus, 1),
                            b'-' => (Tok::Minus, 1),
                            b'*' => (Tok::Star, 1),
                            b'/' => (Tok::Slash, 1),
                            b'%' => (Tok::Percent, 1),
                            b'&' => (Tok::Amp, 1),
                            b'|' => (Tok::Pipe, 1),
                            b'^' => (Tok::Caret, 1),
                            b'~' => (Tok::Tilde, 1),
                            b'!' => (Tok::Bang, 1),
                            b'<' => (Tok::Lt, 1),
                            b'>' => (Tok::Gt, 1),
                            b'=' => (Tok::Assign, 1),
                            _ => {
                                return Err(CError::at(
                                    Span::new(lo as u32, lo as u32 + 1),
                                    format!(
                                        "unexpected character `{}`",
                                        &src[i..].chars().next().unwrap()
                                    ),
                                ))
                            }
                        },
                    },
                };
                i += len;
                push!(tok, lo, i);
            }
        }
    }
    push!(Tok::Eof, b.len(), b.len());
    Ok(out)
}

fn escape(c: u8) -> char {
    match c {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        other => other as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("const int *x;"),
            vec![
                Tok::KwConst,
                Tok::KwInt,
                Tok::Star,
                Tok::Ident("x".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_match() {
        assert_eq!(
            kinds("a <<= b >> c >= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::ShlAssign,
                Tok::Ident("b".into()),
                Tok::Shr,
                Tok::Ident("c".into()),
                Tok::Ge,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
        assert_eq!(kinds("p->x"), vec![
            Tok::Ident("p".into()), Tok::Arrow, Tok::Ident("x".into()), Tok::Eof
        ]);
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(kinds("42 0x2a 'a' '\\n'"), vec![
            Tok::IntLit(42), Tok::IntLit(42), Tok::CharLit(97), Tok::CharLit(10), Tok::Eof
        ]);
        assert_eq!(kinds("\"hi\\n\""), vec![Tok::StrLit("hi\n".into()), Tok::Eof]);
        assert_eq!(kinds("10UL 7u"), vec![Tok::IntLit(10), Tok::IntLit(7), Tok::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n /* block\n */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn varargs_ellipsis() {
        assert_eq!(
            kinds("f(int, ...)"),
            vec![
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::KwInt,
                Tok::Comma,
                Tok::Ellipsis,
                Tok::RParen,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(lex("int x = @;").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("'x").is_err());
    }
}
