//! Abstract syntax for the C subset.

use crate::lexer::Span;
use crate::types::{CTy, FnTy};

/// A whole translation unit (or several concatenated, as the paper does
/// when analyzing multi-file benchmarks at once).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Storage class of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// No storage class.
    None,
    /// `static`.
    Static,
    /// `extern`.
    Extern,
}

/// A top-level item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `typedef T name;` (recorded for information; uses were already
    /// macro-expanded during parsing, per §4.2).
    Typedef {
        /// The introduced name.
        name: String,
        /// The aliased type.
        ty: CTy,
        /// Source location.
        span: Span,
    },
    /// A struct definition.
    StructDef {
        /// The struct tag.
        name: String,
        /// Fields in order.
        fields: Vec<(String, CTy)>,
        /// Source location.
        span: Span,
    },
    /// A global variable.
    Global {
        /// The variable name.
        name: String,
        /// Its declared type.
        ty: CTy,
        /// Optional initializer.
        init: Option<Expr>,
        /// Storage class.
        storage: Storage,
        /// Source location.
        span: Span,
    },
    /// A function definition (with body).
    Func(FnDef),
    /// An enum definition; constants behave as `int` values.
    EnumDef {
        /// The enum tag (possibly synthesized).
        name: String,
        /// The constants with their values.
        consts: Vec<(String, i64)>,
        /// Source location.
        span: Span,
    },
    /// A function prototype (declaration only). Functions that are only
    /// ever declared are *library* functions for the analysis: their
    /// unannotated pointer parameters are conservatively non-const (§4.2).
    Proto {
        /// The function name.
        name: String,
        /// The signature.
        sig: FnTy,
        /// Storage class.
        storage: Storage,
        /// Source location.
        span: Span,
    },
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function name.
    pub name: String,
    /// Return type.
    pub ret: CTy,
    /// Named parameters.
    pub params: Vec<(String, CTy)>,
    /// Whether the parameter list ends with `...`.
    pub varargs: bool,
    /// The body.
    pub body: Block,
    /// Storage class.
    pub storage: Storage,
    /// Source location of the signature.
    pub span: Span,
}

impl FnDef {
    /// The signature as a [`FnTy`].
    #[must_use]
    pub fn sig(&self) -> FnTy {
        FnTy {
            ret: self.ret.clone(),
            params: self.params.iter().map(|(_, t)| t.clone()).collect(),
            varargs: self.varargs,
        }
    }
}

/// A brace-delimited statement block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// A local declaration.
    Decl {
        /// The variable name.
        name: String,
        /// Its type.
        ty: CTy,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// An expression statement.
    Expr(Expr),
    /// `if (cond) then [else els]`.
    If {
        /// The condition.
        cond: Expr,
        /// The then-block.
        then: Block,
        /// The optional else-block.
        els: Option<Block>,
    },
    /// `while (cond) body`.
    While {
        /// The condition.
        cond: Expr,
        /// The body.
        body: Block,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// The body.
        body: Block,
        /// The condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// The initializer (a declaration or expression statement).
        init: Option<Box<Stmt>>,
        /// The loop condition.
        cond: Option<Expr>,
        /// The step expression.
        step: Option<Expr>,
        /// The body.
        body: Block,
    },
    /// `switch (cond) { case k: ...; default: ... }`. Fallthrough is
    /// irrelevant to the flow-insensitive analysis, so each arm holds the
    /// statements up to the next label.
    Switch {
        /// The scrutinee.
        cond: Expr,
        /// The arms; `value` is `None` for `default`.
        arms: Vec<SwitchArm>,
    },
    /// A labelled statement `name: stmt`.
    Label(String, Box<Stmt>),
    /// `goto name;`.
    Goto(String, Span),
    /// `return [e];`.
    Return(Option<Expr>, Span),
    /// `break;`.
    Break(Span),
    /// `continue;`.
    Continue(Span),
    /// A nested block.
    Block(Block),
}

/// One arm of a `switch`.
#[derive(Debug, Clone)]
pub struct SwitchArm {
    /// The case value (`None` for `default`).
    pub value: Option<i64>,
    /// The statements up to the next label.
    pub body: Block,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-e`.
    Neg,
    /// `!e`.
    Not,
    /// `~e`.
    BitNot,
    /// `*e`.
    Deref,
    /// `&e`.
    Addr,
    /// `++e`.
    PreInc,
    /// `--e`.
    PreDec,
}

/// Binary operators (all produce scalars except pointer arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (includes pointer + int).
    Add,
    /// `-` (includes pointer - int and pointer - pointer).
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `&`.
    BitAnd,
    /// `|`.
    BitOr,
    /// `^`.
    BitXor,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&&`.
    And,
    /// `||`.
    Or,
}

/// Compound-assignment operators (`=` is `AssignOp::Plain`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`.
    Plain,
    /// `+=`, `-=`, `*=` … — the underlying arithmetic op.
    Compound(BinOp),
}

/// An expression node with a unique id (sema results are keyed by it).
#[derive(Debug, Clone)]
pub struct Expr {
    /// The form.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
    /// Unique id within the program.
    pub id: u32,
}

/// Expression forms.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Character literal.
    CharLit(i64),
    /// String literal (type `ptr(const char)`).
    StrLit(String),
    /// An identifier (variable, enum constant, or function).
    Ident(String),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// Postfix `e++` / `e--`.
    PostIncDec(Box<Expr>, bool),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment `lhs op= rhs`.
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// A call `f(args)`.
    Call(Box<Expr>, Vec<Expr>),
    /// Indexing `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Member access `e.f`.
    Member(Box<Expr>, String),
    /// Pointer member access `e->f`.
    PMember(Box<Expr>, String),
    /// An explicit cast `(T)e` — severs qualifier flow (§4.2).
    Cast(CTy, Box<Expr>),
    /// Ternary `c ? t : f`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `sizeof(T)` / `sizeof e` (both type `int` here).
    Sizeof,
    /// Comma `a, b`.
    Comma(Box<Expr>, Box<Expr>),
}

impl Program {
    /// Iterates over the defined functions.
    pub fn functions(&self) -> impl Iterator<Item = &FnDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Func(f) => Some(f),
            _ => None,
        })
    }

    /// Finds a defined function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.functions().find(|f| f.name == name)
    }

    /// The struct table: tag → fields.
    #[must_use]
    pub fn structs(&self) -> std::collections::HashMap<&str, &[(String, CTy)]> {
        self.items
            .iter()
            .filter_map(|i| match i {
                Item::StructDef { name, fields, .. } => {
                    Some((name.as_str(), fields.as_slice()))
                }
                _ => None,
            })
            .collect()
    }

    /// Replaces the named function definition with an equivalent
    /// prototype. Fault isolation uses this to exclude a function whose
    /// analysis failed: calls to it still resolve, but it is treated
    /// like an unanalyzable library function.
    pub fn demote_to_proto(&mut self, name: &str) {
        for item in &mut self.items {
            if let Item::Func(f) = item {
                if f.name == name {
                    *item = Item::Proto {
                        name: f.name.clone(),
                        sig: f.sig(),
                        storage: f.storage,
                        span: f.span,
                    };
                }
            }
        }
    }

    /// Drops the initializer of the named global (fault isolation for a
    /// global whose initializer failed analysis).
    pub fn drop_global_init(&mut self, name: &str) {
        for item in &mut self.items {
            if let Item::Global {
                name: n, init, ..
            } = item
            {
                if n == name {
                    *init = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_sig_collects_param_types() {
        let f = FnDef {
            name: "f".into(),
            ret: CTy::int(),
            params: vec![("x".into(), CTy::int()), ("p".into(), CTy::char_().ptr_to())],
            varargs: true,
            body: Block::default(),
            storage: Storage::None,
            span: Span::default(),
        };
        let sig = f.sig();
        assert_eq!(sig.params.len(), 2);
        assert!(sig.varargs);
        assert_eq!(sig.ret, CTy::int());
    }
}
