//! Errors for the C front end.

use std::fmt;

use crate::lexer::Span;

/// A lexing, parsing, or semantic error in C source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CError {
    /// Where the error occurred.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl CError {
    /// Creates an error at `span`.
    pub fn at(span: Span, message: impl Into<String>) -> CError {
        CError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C error at bytes {}..{}: {}",
            self.span.lo, self.span.hi, self.message
        )
    }
}

impl std::error::Error for CError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_location() {
        let e = CError::at(Span::new(1, 4), "oops");
        assert_eq!(e.to_string(), "C error at bytes 1..4: oops");
    }
}
