//! Property tests for the atomic constraint solver: solutions satisfy all
//! constraints, the least solution is pointwise minimal, the greatest is
//! pointwise maximal, and unsatisfiability is detected exactly when no
//! assignment exists (verified by brute force on small systems).

use proptest::prelude::*;
use qual_lattice::{QualSet, QualSpace};
use qual_solve::{ConstraintSet, QVar, Qual, VarSupply};

const NVARS: usize = 4;

#[derive(Debug, Clone)]
struct RawSystem {
    space_bits: usize,
    constraints: Vec<(u8, u8)>, // encoded terms
}

/// Terms are encoded in a byte: 0..NVARS = variables, NVARS.. = constants.
fn decode(space: &QualSpace, code: u8) -> Qual {
    let n = NVARS as u8;
    if code < n {
        Qual::Var(QVar::from_index(code as usize))
    } else {
        let c = u64::from(code - n) & (space.top().bits());
        Qual::Const(QualSet::from_bits(c))
    }
}

fn arb_system() -> impl Strategy<Value = RawSystem> {
    let nbits = 2usize;
    let max_code = (NVARS + (1 << nbits)) as u8;
    prop::collection::vec((0..max_code, 0..max_code), 0..12).prop_map(move |constraints| {
        RawSystem {
            space_bits: nbits,
            constraints,
        }
    })
}

fn build(sys: &RawSystem) -> (QualSpace, VarSupply, ConstraintSet) {
    let mut b = qual_lattice::QualSpaceBuilder::new();
    for i in 0..sys.space_bits {
        b = if i % 2 == 0 {
            b.positive(format!("p{i}"))
        } else {
            b.negative(format!("n{i}"))
        };
    }
    let space = b.build().unwrap();
    let mut vars = VarSupply::new();
    for _ in 0..NVARS {
        vars.fresh();
    }
    let mut cs = ConstraintSet::new();
    for &(l, r) in &sys.constraints {
        cs.add(decode(&space, l), decode(&space, r));
    }
    (space, vars, cs)
}

/// Brute-force: does assignment `asg` satisfy the system?
fn satisfies(space: &QualSpace, cs: &ConstraintSet, asg: &[QualSet]) -> bool {
    cs.constraints().iter().all(|c| {
        let l = match c.lhs {
            Qual::Var(v) => asg[v.index()],
            Qual::Const(x) => x,
        };
        let r = match c.rhs {
            Qual::Var(v) => asg[v.index()],
            Qual::Const(x) => x,
        };
        space.le(l, r)
    })
}

fn all_assignments(space: &QualSpace) -> Vec<Vec<QualSet>> {
    let elems: Vec<QualSet> = space.elements().collect();
    let mut out = vec![Vec::new()];
    for _ in 0..NVARS {
        let mut next = Vec::new();
        for partial in &out {
            for &e in &elems {
                let mut p = partial.clone();
                p.push(e);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_agrees_with_brute_force(sys in arb_system()) {
        let (space, vars, cs) = build(&sys);
        let brute: Vec<Vec<QualSet>> = all_assignments(&space)
            .into_iter()
            .filter(|a| satisfies(&space, &cs, a))
            .collect();
        match cs.solve(&space, &vars) {
            Ok(sol) => {
                prop_assert!(!brute.is_empty(), "solver said SAT, brute force found none");
                let least: Vec<QualSet> =
                    (0..NVARS).map(|i| sol.least(QVar::from_index(i))).collect();
                let greatest: Vec<QualSet> =
                    (0..NVARS).map(|i| sol.greatest(QVar::from_index(i))).collect();
                // Both endpoints satisfy the system.
                prop_assert!(satisfies(&space, &cs, &least));
                prop_assert!(satisfies(&space, &cs, &greatest));
                // least is pointwise minimal, greatest pointwise maximal.
                for a in &brute {
                    for i in 0..NVARS {
                        prop_assert!(space.le(least[i], a[i]),
                            "least not minimal at var {i}");
                        prop_assert!(space.le(a[i], greatest[i]),
                            "greatest not maximal at var {i}");
                    }
                }
            }
            Err(e) => {
                prop_assert!(brute.is_empty(),
                    "solver said UNSAT ({e}) but brute force found a solution");
                prop_assert!(!e.violations.is_empty());
            }
        }
    }

    #[test]
    fn extending_constraints_moves_least_up(sys in arb_system(), extra in (0u8..4, 0u8..4)) {
        let (space, vars, mut cs) = build(&sys);
        let sol0 = match cs.solve(&space, &vars) { Ok(s) => s, Err(_) => return Ok(()) };
        cs.add(Qual::Var(QVar::from_index(extra.0 as usize)),
               Qual::Var(QVar::from_index(extra.1 as usize)));
        if let Ok(sol1) = cs.solve(&space, &vars) {
            for i in 0..NVARS {
                let v = QVar::from_index(i);
                prop_assert!(space.le(sol0.least(v), sol1.least(v)));
                prop_assert!(space.le(sol1.greatest(v), sol0.greatest(v)));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Every-coordinate certification (the multi-qualifier registry's
// contract): an independent verifier re-checks each constraint at each
// masked coordinate, so a word-parallel solve over several qualifier
// spaces certifies exactly when every coordinate's two-point system
// holds — and rejects a solution the moment any single coordinate of
// any variable is corrupted.
// ---------------------------------------------------------------------------

use qual_solve::{verify_explanation, verify_solution, Provenance, Solution};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn certification_is_exactly_per_coordinate_soundness(
        sys in arb_system(),
        tamper in (0usize..NVARS, 0usize..8, any::<bool>()),
    ) {
        let (space, vars, cs) = build(&sys);
        let Ok(sol) = cs.solve(&space, &vars) else { return Ok(()) };
        prop_assert!(
            verify_solution(&space, cs.constraints(), &sol).is_ok(),
            "the solver's own answer must certify"
        );
        // Flip ONE coordinate of ONE endpoint of ONE variable. The
        // verifier must accept the tampered solution iff it is still,
        // coordinate for coordinate, a well-formed satisfying pair —
        // never stricter (spurious rejection), never laxer (missed
        // corruption).
        let (v, coord, hit_least) = tamper;
        let coord = coord % space.len();
        let mut least: Vec<QualSet> =
            (0..NVARS).map(|i| sol.least(QVar::from_index(i))).collect();
        let mut greatest: Vec<QualSet> =
            (0..NVARS).map(|i| sol.greatest(QVar::from_index(i))).collect();
        let side = if hit_least { &mut least } else { &mut greatest };
        side[v] = QualSet::from_bits(side[v].bits() ^ (1 << coord));
        let sound = satisfies(&space, &cs, &least)
            && satisfies(&space, &cs, &greatest)
            && (0..NVARS).all(|i| space.le(least[i], greatest[i]));
        let t = Solution::from_parts(least, greatest);
        prop_assert_eq!(
            verify_solution(&space, cs.constraints(), &t).is_ok(),
            sound
        );
    }

    #[test]
    fn masked_systems_certify_or_explain_at_their_coordinate(
        picks in prop::collection::vec((0u8..6, 0u8..6, 0usize..4), 1..10),
    ) {
        // A four-coordinate space (mixed polarity) with every
        // constraint masked to a single random coordinate — the shape
        // the qualifier registry emits for its choice-point rules.
        let mut b = qual_lattice::QualSpaceBuilder::new();
        for i in 0..4 {
            b = if i % 2 == 0 {
                b.positive(format!("p{i}"))
            } else {
                b.negative(format!("n{i}"))
            };
        }
        let space = b.build().unwrap();
        let mut vars = VarSupply::new();
        for _ in 0..NVARS {
            vars.fresh();
        }
        let ids: Vec<_> = space.iter().map(|(id, _)| id).collect();
        let mut cs = ConstraintSet::new();
        for &(l, r, coord) in &picks {
            cs.add_masked(
                decode(&space, l),
                decode(&space, r),
                &[ids[coord]],
                Provenance::synthetic("prop"),
            );
        }
        match cs.solve(&space, &vars) {
            Ok(sol) => {
                // SAT: the solution certifies at every coordinate of
                // every constraint's mask.
                prop_assert!(
                    verify_solution(&space, cs.constraints(), &sol).is_ok()
                );
            }
            Err(err) => {
                // UNSAT: each violation replays as a constraint path
                // naming its coordinate, and each path independently
                // re-verifies.
                let exps = qual_solve::explain(&space, cs.constraints(), &err);
                prop_assert!(!exps.is_empty());
                for exp in &exps {
                    prop_assert!(
                        verify_explanation(&space, exp).is_ok(),
                        "explanation failed to replay"
                    );
                    prop_assert!(
                        exp.qualifier.bits().is_power_of_two(),
                        "each explanation names exactly one coordinate"
                    );
                }
            }
        }
    }
}
