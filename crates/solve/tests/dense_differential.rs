//! The dense-vs-reference differential oracle.
//!
//! The CSR solver (`dense.rs`) replaced the sparse worklist on the hot
//! path; the original solver survives as
//! [`ConstraintSet::solve_with_budget_reference`], an executable spec.
//! This suite pins the contract between them: **byte-identical results
//! on every input** — solutions (per-variable least *and* greatest),
//! unsat diagnostics (the violation list, element for element, in
//! order), and explanation chains (step for step, span for span).
//!
//! Two layers:
//!
//! * **Part A** — cgen-seeded end-to-end programs: every profile
//!   composition × all qualifier sets × mono/poly/polyrec, solved by
//!   the dense path inside the analysis engine and re-solved by the
//!   reference path from the exact same constraint set. Case count
//!   defaults to 300 (`QUAL_DENSE_CASES`); on a mismatch the offending
//!   C program is dumped to `QUAL_DENSE_CORPUS_DIR` (if set) so CI can
//!   upload it as an artifact.
//! * **Part B** — coalescing-directed generators aimed at the dense
//!   solver's simplification machinery: long cycles (online collapse +
//!   solve-time Tarjan), diamond chains (single-predecessor coalescing
//!   must *not* fire at joins), self-loops (inert), masked cycles whose
//!   mask equals the space top without being `u64::MAX` (invisible to
//!   the online collapser, caught by Tarjan), and random systems with
//!   online collapse toggled both ways.

use std::fmt::Write as _;

use proptest::prelude::*;
use qual_lattice::{QualSet, QualSpace, QualSpaceBuilder};
use qual_solve::{
    explain, verify_explanation, verify_solution, ConstraintSet, QVar, Qual, SolveFailure,
    VarSupply,
};

/// The qualifier sets Part A runs every program through: the paper's
/// const analysis, a mixed-polarity pair, a negative-polarity set, and
/// the full four-qualifier space.
const QUAL_SETS: &[&str] = &[
    "const",
    "const,nonnull",
    "tainted",
    "const,nonnull,tainted,linear",
];

fn cases() -> u32 {
    std::env::var("QUAL_DENSE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Solves `cs` on both paths and demands byte identity. Returns a
/// human-readable description of the first divergence, if any.
fn diff_paths(space: &QualSpace, vars: &VarSupply, cs: &ConstraintSet) -> Result<(), String> {
    let dense = cs.solve_with_budget(space, vars, u64::MAX);
    let reference = cs.solve_with_budget_reference(space, vars, u64::MAX);
    match (&dense, &reference) {
        (Ok(d), Ok(r)) => {
            for i in 0..vars.count() {
                let v = QVar::from_index(i);
                if d.least(v) != r.least(v) {
                    return Err(format!(
                        "least diverges at var {i}: dense {:?}, reference {:?}",
                        d.least(v),
                        r.least(v)
                    ));
                }
                if d.greatest(v) != r.greatest(v) {
                    return Err(format!(
                        "greatest diverges at var {i}: dense {:?}, reference {:?}",
                        d.greatest(v),
                        r.greatest(v)
                    ));
                }
            }
            // Both endpoints must certify under the independent checker
            // (identity alone would let a shared bug through).
            for (name, sol) in [("dense", d), ("reference", r)] {
                if let Err(e) = verify_solution(space, cs.constraints(), sol) {
                    return Err(format!("{name} solution failed certification: {e:?}"));
                }
            }
            Ok(())
        }
        (Err(SolveFailure::Unsat(d)), Err(SolveFailure::Unsat(r))) => {
            if d != r {
                return Err(format!(
                    "violation lists diverge:\n  dense:     {d:?}\n  reference: {r:?}"
                ));
            }
            // Identical diagnostics must yield identical explanation
            // chains, and every chain must replay through the verifier.
            let de = explain(space, cs.constraints(), d);
            let re = explain(space, cs.constraints(), r);
            if de != re {
                return Err(format!(
                    "explanation chains diverge:\n  dense:     {de:?}\n  reference: {re:?}"
                ));
            }
            if de.len() != d.violations.len() {
                return Err(format!(
                    "{} of {} violations explained",
                    de.len(),
                    d.violations.len()
                ));
            }
            for exp in &de {
                if let Err(e) = verify_explanation(space, exp) {
                    return Err(format!("explanation failed to replay: {e:?}"));
                }
            }
            Ok(())
        }
        _ => Err(format!(
            "outcome kind diverges:\n  dense:     {dense:?}\n  reference: {reference:?}"
        )),
    }
}

// ---------------------------------------------------------------------------
// Part A: end-to-end cgen-seeded programs.
// ---------------------------------------------------------------------------

/// Dumps a failing program (plus the context that exposed it) into
/// `QUAL_DENSE_CORPUS_DIR` so the CI job can upload it as an artifact.
fn dump_corpus(src: &str, quals: &str, mode: qual_constinfer::Mode, detail: &str) {
    let Ok(dir) = std::env::var("QUAL_DENSE_CORPUS_DIR") else {
        return;
    };
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    // Stable content-derived name: re-runs of the same failure overwrite
    // rather than accumulate.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in src.bytes().chain(quals.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut report = String::new();
    let _ = writeln!(report, "// quals: {quals}");
    let _ = writeln!(report, "// mode: {mode:?}");
    for line in detail.lines() {
        let _ = writeln!(report, "// {line}");
    }
    let _ = writeln!(report, "{src}");
    let _ = std::fs::write(format!("{dir}/mismatch-{h:016x}.c"), report);
}

/// Runs one generated program through the full analysis in `mode` over
/// `quals`, then re-solves the engine's constraint set on the reference
/// path and demands identical results.
fn check_program(src: &str, quals: &str, mode: qual_constinfer::Mode) -> Result<(), String> {
    let space = qual_constinfer::space_for(quals).map_err(|e| format!("space_for: {e:?}"))?;
    let r = qual_constinfer::analyze_source_in(src, &space, mode)
        .map_err(|e| format!("analysis rejected generated program: {e:?}"))?;
    let a = &r.analysis;

    // The engine solved with the dense path (online collapse enabled at
    // generation time). Re-solve the same set on the reference path.
    let reference = a
        .constraints
        .solve_with_budget_reference(&a.space, &a.supply, u64::MAX);
    match (&a.solution, &reference) {
        (Ok(d), Ok(r)) => {
            for i in 0..a.supply.count() {
                let v = QVar::from_index(i);
                if d.least(v) != r.least(v) || d.greatest(v) != r.greatest(v) {
                    return Err(format!(
                        "solution diverges at var {i}: dense ({:?}, {:?}) vs reference ({:?}, {:?})",
                        d.least(v),
                        d.greatest(v),
                        r.least(v),
                        r.greatest(v)
                    ));
                }
            }
            if let Err(e) = verify_solution(&a.space, a.constraints.constraints(), d) {
                return Err(format!("dense solution failed certification: {e:?}"));
            }
            Ok(())
        }
        (Err(SolveFailure::Unsat(d)), Err(SolveFailure::Unsat(r))) => {
            if d != r {
                return Err(format!(
                    "diagnostics diverge:\n  dense:     {d:?}\n  reference: {r:?}"
                ));
            }
            let de = explain(&a.space, a.constraints.constraints(), d);
            let re = explain(&a.space, a.constraints.constraints(), r);
            if de != re {
                return Err("explanation chains diverge".into());
            }
            Ok(())
        }
        _ => Err(format!(
            "outcome kind diverges: dense {:?} vs reference {:?}",
            a.solution.is_ok(),
            reference.is_ok()
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// 300+ cgen-seeded programs (every profile composition, random
    /// seeds and sizes) × all qualifier sets × all three analysis
    /// modes: dense and reference agree byte for byte.
    #[test]
    fn dense_matches_reference_on_generated_programs(
        seed in any::<u64>(),
        base in 0usize..7,
        lines in 40usize..120,
    ) {
        let mut profile = qual_cgen::bench_profiles()[base].scaled(lines);
        profile.seed = seed;
        let src = qual_cgen::generate(&profile);
        for quals in QUAL_SETS {
            for mode in [
                qual_constinfer::Mode::Monomorphic,
                qual_constinfer::Mode::Polymorphic,
                qual_constinfer::Mode::PolymorphicRecursive,
            ] {
                if let Err(detail) = check_program(&src, quals, mode) {
                    dump_corpus(&src, quals, mode, &detail);
                    prop_assert!(false, "[{quals} / {mode:?}] {detail}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Part B: coalescing-directed generators.
// ---------------------------------------------------------------------------

/// A small mixed-polarity space: two positive, one negative qualifier.
fn small_space() -> QualSpace {
    QualSpaceBuilder::new()
        .positive("p0")
        .negative("n0")
        .positive("p1")
        .build()
        .unwrap()
}

fn supply(n: usize) -> VarSupply {
    let mut vars = VarSupply::new();
    for _ in 0..n {
        vars.fresh();
    }
    vars
}

fn var(i: usize) -> Qual {
    Qual::Var(QVar::from_index(i))
}

fn konst(bits: u64) -> Qual {
    Qual::Const(QualSet::from_bits(bits))
}

/// Long full-mask cycles with a seed flowing in: the online collapser
/// sees the 2-cycles, Tarjan the rest, and both ends of the cycle must
/// land on the same value as the reference fixpoint.
#[test]
fn long_cycles_collapse_exactly() {
    let space = small_space();
    for len in 2..50 {
        for online in [false, true] {
            let vars = supply(len + 1);
            let mut cs = ConstraintSet::new();
            if online {
                cs.enable_online_collapse();
            }
            // v0 -> v1 -> ... -> v_{len-1} -> v0, seeded at v0 and
            // drained into a fresh tail var so expansion is exercised.
            for i in 0..len {
                cs.add(var(i), var((i + 1) % len));
            }
            cs.add(konst(0b01), var(0));
            cs.add(var(len / 2), var(len));
            diff_paths(&space, &vars, &cs)
                .unwrap_or_else(|e| panic!("cycle len {len}, online={online}: {e}"));
        }
    }
}

/// Every pair in the cycle also asserted as an explicit equality, so
/// the online collapser unions eagerly during generation.
#[test]
fn dense_equality_cycles_collapse_online() {
    let space = small_space();
    for len in 2..20 {
        let vars = supply(len);
        let mut cs = ConstraintSet::new();
        cs.enable_online_collapse();
        for i in 0..len - 1 {
            cs.add(var(i), var(i + 1));
            cs.add(var(i + 1), var(i));
        }
        cs.add(konst(0b100), var(len - 1));
        assert!(
            cs.collapser().is_some_and(|c| c.merged() > 0) || len < 2,
            "online collapser never fired on an equality chain of {len}"
        );
        diff_paths(&space, &vars, &cs).unwrap_or_else(|e| panic!("eq cycle len {len}: {e}"));
    }
}

/// Diamond chains: each layer fans out and re-joins, so the join node
/// has two predecessors and single-predecessor coalescing must not
/// alias it to either branch.
#[test]
fn diamond_chains_do_not_over_coalesce() {
    let space = small_space();
    for diamonds in 1..12 {
        let vars = supply(3 * diamonds + 1);
        let mut cs = ConstraintSet::new();
        for d in 0..diamonds {
            let top = 3 * d;
            // top -> left, top -> right, left -> join, right -> join.
            cs.add(var(top), var(top + 1));
            cs.add(var(top), var(top + 2));
            cs.add(var(top + 1), var(top + 3));
            cs.add(var(top + 2), var(top + 3));
            // One branch gets an extra seed so the two join inputs
            // genuinely differ.
            cs.add(konst(0b010), var(top + 1));
        }
        cs.add(konst(0b001), var(0));
        diff_paths(&space, &vars, &cs).unwrap_or_else(|e| panic!("{diamonds} diamonds: {e}"));
    }
}

/// Pure chains are where single-predecessor coalescing fires hardest:
/// every interior variable is an alias of its predecessor.
#[test]
fn straight_chains_coalesce_exactly() {
    let space = small_space();
    for len in [2usize, 7, 33, 64, 129] {
        let vars = supply(len);
        let mut cs = ConstraintSet::new();
        cs.add(konst(0b011), var(0));
        for i in 0..len - 1 {
            cs.add(var(i), var(i + 1));
        }
        // Cap the far end so the greatest side also has structure.
        cs.add(var(len - 1), konst(0b011));
        diff_paths(&space, &vars, &cs).unwrap_or_else(|e| panic!("chain len {len}: {e}"));
    }
}

/// Self-loops (full-mask and masked) are inert on both paths.
#[test]
fn self_loops_are_inert() {
    let space = small_space();
    let vars = supply(3);
    for online in [false, true] {
        let mut cs = ConstraintSet::new();
        if online {
            cs.enable_online_collapse();
        }
        cs.add(var(0), var(0));
        cs.add_masked(
            var(1),
            var(1),
            &[space.iter().next().unwrap().0],
            qual_solve::Provenance::synthetic("self-loop"),
        );
        cs.add(konst(0b001), var(0));
        cs.add(var(1), var(2));
        diff_paths(&space, &vars, &cs).unwrap_or_else(|e| panic!("online={online}: {e}"));
    }
}

/// A cycle whose edges carry `mask == top` but not `u64::MAX`: the
/// online collapser (which only trusts literal full masks) must leave
/// it alone, and the solve-time Tarjan pass must still collapse it.
#[test]
fn masked_top_cycles_collapse_at_solve_time() {
    let space = small_space();
    let all_ids: Vec<_> = space.iter().map(|(id, _)| id).collect();
    for len in 2..16 {
        let vars = supply(len);
        let mut cs = ConstraintSet::new();
        cs.enable_online_collapse();
        for i in 0..len {
            cs.add_masked(
                var(i),
                var((i + 1) % len),
                &all_ids,
                qual_solve::Provenance::synthetic("masked cycle"),
            );
        }
        cs.add(konst(0b001), var(0));
        assert_eq!(
            cs.collapser().map(qual_solve::Collapser::merged),
            Some(0),
            "online collapser must not union masked edges"
        );
        diff_paths(&space, &vars, &cs).unwrap_or_else(|e| panic!("masked cycle len {len}: {e}"));
    }
}

/// Unsat through a collapsed cycle: the violation must cite the
/// *original* constraint (not a remapped id), so the explanation chain
/// renders against real provenance on both paths.
#[test]
fn unsat_inside_a_cycle_reports_original_constraints() {
    let space = small_space();
    let vars = supply(4);
    let mut cs = ConstraintSet::new();
    cs.enable_online_collapse();
    // 2-cycle v1 = v2, seeded with p0|p1, capped (through v3) at p0
    // only: unsat at the p1 coordinate.
    cs.add(var(1), var(2));
    cs.add(var(2), var(1));
    cs.add(konst(0b101), var(1));
    cs.add(var(2), var(3));
    cs.add(var(3), konst(0b001));
    diff_paths(&space, &vars, &cs).unwrap_or_else(|e| panic!("{e}"));
    let err = match cs.solve_with_budget(&space, &vars, u64::MAX) {
        Err(SolveFailure::Unsat(e)) => e,
        other => panic!("expected unsat, got {other:?}"),
    };
    assert_eq!(err.violations.len(), 1);
    // The cited constraint is the literal final cap, untouched by the
    // cycle collapse that swallowed v1/v2.
    assert_eq!(err.violations[0].constraint.lhs, var(3));
    assert_eq!(err.violations[0].constraint.rhs, konst(0b001));
    let exps = explain(&space, cs.constraints(), &err);
    assert_eq!(exps.len(), 1);
    verify_explanation(&space, &exps[0]).expect("chain must replay");
}

// ---------------------------------------------------------------------------
// Part B (random): arbitrary small systems, online collapse both ways.
// ---------------------------------------------------------------------------

const NVARS: usize = 6;

/// Terms in a byte: 0..NVARS = variables, NVARS.. = constants.
fn decode(space: &QualSpace, code: u8) -> Qual {
    let n = NVARS as u8;
    if code < n {
        var(code as usize)
    } else {
        konst(u64::from(code - n) & space.top().bits())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random systems (cycles, unsat cores, masked edges all arise by
    /// chance), with the online collapser toggled both ways: four-way
    /// agreement between {dense, reference} × {collapsed, raw}.
    #[test]
    fn random_systems_agree_under_collapse(
        raw in prop::collection::vec((0u8..14, 0u8..14), 0..24),
    ) {
        let space = small_space();
        let vars = supply(NVARS);
        let mut plain = ConstraintSet::new();
        let mut online = ConstraintSet::new();
        online.enable_online_collapse();
        for &(l, r) in &raw {
            plain.add(decode(&space, l), decode(&space, r));
            online.add(decode(&space, l), decode(&space, r));
        }
        if let Err(e) = diff_paths(&space, &vars, &plain) {
            prop_assert!(false, "raw set: {}", e);
        }
        if let Err(e) = diff_paths(&space, &vars, &online) {
            prop_assert!(false, "online-collapsed set: {}", e);
        }
        // The two dense runs (with and without the pre-collapser) must
        // also agree with each other.
        let a = plain.solve_with_budget(&space, &vars, u64::MAX);
        let b = online.solve_with_budget(&space, &vars, u64::MAX);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                for i in 0..NVARS {
                    let v = QVar::from_index(i);
                    prop_assert_eq!(x.least(v), y.least(v), "least at var {}", i);
                    prop_assert_eq!(x.greatest(v), y.greatest(v), "greatest at var {}", i);
                }
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "collapse changed satisfiability: {:?} vs {:?}", a, b),
        }
    }
}

// ---------------------------------------------------------------------------
// The headline perf claim, pinned as a count (not a timing).
// ---------------------------------------------------------------------------

/// The dense path must take ≥5× fewer `solve.steps` per constraint than
/// the reference path on a large cgen profile. Steps are deterministic
/// counts (edge relaxations plus simplification charges), so this is a
/// stable gate, not a wall-clock assertion.
#[test]
fn dense_takes_five_times_fewer_steps_on_large_profiles() {
    let profile = qual_cgen::bench_profiles()[5].scaled(4_000); // uucp composition
    let src = qual_cgen::generate(&profile);
    let space = qual_constinfer::space_for("const").unwrap();
    let r = qual_constinfer::analyze_source_in(&src, &space, qual_constinfer::Mode::Monomorphic)
        .expect("generated program must analyze");
    let a = &r.analysis;
    let n = a.constraints.constraints().len() as u64;
    assert!(n > 1_000, "profile too small to be meaningful ({n} constraints)");

    let (dense, dense_report) = qual_obs::scoped(|| {
        a.constraints
            .solve_with_budget(&a.space, &a.supply, u64::MAX)
    });
    let (reference, ref_report) = qual_obs::scoped(|| {
        a.constraints
            .solve_with_budget_reference(&a.space, &a.supply, u64::MAX)
    });
    assert!(dense.is_ok() && reference.is_ok());

    let dense_steps = dense_report.counter("solve.steps");
    let ref_steps = ref_report.counter("solve.steps");
    assert!(
        dense_steps * 5 <= ref_steps,
        "dense {dense_steps} steps vs reference {ref_steps} on {n} constraints: \
         less than the required 5x reduction ({:.2}x)",
        ref_steps as f64 / dense_steps.max(1) as f64
    );
}
