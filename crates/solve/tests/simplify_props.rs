//! Property test: compaction preserves the least and greatest solutions
//! at every interface variable, for random systems with random masks.

use std::collections::HashSet;

use proptest::prelude::*;
use qual_lattice::{QualSet, QualSpaceBuilder};
use qual_solve::{compact, ConstraintSet, Provenance, QVar, Qual, VarSupply};

const NVARS: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compaction_preserves_interface_solutions(
        raw in prop::collection::vec((0u8..8, 0u8..8, 0u64..8, any::<bool>()), 0..16),
        internal_mask in 0u8..(1 << (NVARS as u8)),
    ) {
        let space = QualSpaceBuilder::new()
            .positive("p")
            .negative("n")
            .positive("q")
            .build()
            .unwrap();
        let mut vs = VarSupply::new();
        for _ in 0..NVARS {
            vs.fresh();
        }
        let decode = |c: u8| -> Qual {
            if (c as usize) < NVARS {
                Qual::Var(QVar::from_index(c as usize))
            } else {
                Qual::Const(QualSet::from_bits(u64::from(c) & space.top().bits()))
            }
        };
        let mut cs = ConstraintSet::new();
        for &(l, r, m, full) in &raw {
            let mask = if full { u64::MAX } else { m };
            cs.extend([qual_solve::Constraint {
                lhs: decode(l),
                rhs: decode(r),
                mask,
                origin: Provenance::synthetic("prop"),
            }]);
        }
        let internal: HashSet<QVar> = (0..NVARS)
            .filter(|i| internal_mask >> i & 1 == 1)
            .map(QVar::from_index)
            .collect();

        let compacted = compact(cs.constraints(), &internal, 1_000_000);
        let small: ConstraintSet = compacted.constraints.iter().copied().collect();

        let before = cs.solve(&space, &vs);
        let after = small.solve(&space, &vs);
        match (before, after) {
            (Ok(b), Ok(a)) => {
                for i in 0..NVARS {
                    let v = QVar::from_index(i);
                    if !internal.contains(&v) {
                        prop_assert_eq!(b.least(v), a.least(v),
                            "least differs at interface var {}", i);
                        prop_assert_eq!(b.greatest(v), a.greatest(v),
                            "greatest differs at interface var {}", i);
                    }
                }
            }
            (Err(_), Err(_)) => {}
            // Eliminating an internal variable can erase a violation
            // *only* if the violating path ran through... it cannot:
            // path contraction preserves const-to-const consequences.
            (b, a) => prop_assert!(false,
                "satisfiability changed: before={} after={}",
                b.is_ok(), a.is_ok()),
        }
    }
}
