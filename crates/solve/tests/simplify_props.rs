//! Property tests for the simplification machinery: compaction
//! preserves the least and greatest solutions at every interface
//! variable (per qualifier coordinate), the online cycle collapser is
//! solution-preserving and rolls back in lockstep with `truncate`, and
//! the independent verifier certifies both the original and the
//! simplified system's solutions.

use std::collections::HashSet;

use proptest::prelude::*;
use qual_lattice::{QualSet, QualSpace, QualSpaceBuilder};
use qual_solve::{
    compact, verify_solution, ConstraintSet, Provenance, QVar, Qual, VarSupply,
};

const NVARS: usize = 6;

fn three_space() -> QualSpace {
    QualSpaceBuilder::new()
        .positive("p")
        .negative("n")
        .positive("q")
        .build()
        .unwrap()
}

fn mk_supply() -> VarSupply {
    let mut vs = VarSupply::new();
    for _ in 0..NVARS {
        vs.fresh();
    }
    vs
}

/// Per-coordinate equality: the two sets agree on the presence of every
/// qualifier of the space individually (stronger diagnostics than a
/// bitwise compare — failures name the qualifier).
fn same_per_coordinate(space: &QualSpace, a: QualSet, b: QualSet) -> Result<(), String> {
    for (id, decl) in space.iter() {
        let bit = 1u64 << id.index();
        if (a.bits() & bit) != (b.bits() & bit) {
            return Err(format!("coordinate `{}` differs: {a:?} vs {b:?}", decl.name()));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compaction_preserves_interface_solutions(
        raw in prop::collection::vec((0u8..8, 0u8..8, 0u64..8, any::<bool>()), 0..16),
        internal_mask in 0u8..(1 << (NVARS as u8)),
    ) {
        let space = three_space();
        let vs = mk_supply();
        let decode = |c: u8| -> Qual {
            if (c as usize) < NVARS {
                Qual::Var(QVar::from_index(c as usize))
            } else {
                Qual::Const(QualSet::from_bits(u64::from(c) & space.top().bits()))
            }
        };
        let mut cs = ConstraintSet::new();
        for &(l, r, m, full) in &raw {
            let mask = if full { u64::MAX } else { m };
            cs.extend([qual_solve::Constraint {
                lhs: decode(l),
                rhs: decode(r),
                mask,
                origin: Provenance::synthetic("prop"),
            }]);
        }
        let internal: HashSet<QVar> = (0..NVARS)
            .filter(|i| internal_mask >> i & 1 == 1)
            .map(QVar::from_index)
            .collect();

        let compacted = compact(cs.constraints(), &internal, 1_000_000);
        let small: ConstraintSet = compacted.constraints.iter().copied().collect();

        let before = cs.solve(&space, &vs);
        let after = small.solve(&space, &vs);
        match (before, after) {
            (Ok(b), Ok(a)) => {
                for i in 0..NVARS {
                    let v = QVar::from_index(i);
                    if !internal.contains(&v) {
                        if let Err(e) = same_per_coordinate(&space, b.least(v), a.least(v)) {
                            prop_assert!(false, "least at interface var {}: {}", i, e);
                        }
                        if let Err(e) = same_per_coordinate(&space, b.greatest(v), a.greatest(v)) {
                            prop_assert!(false, "greatest at interface var {}: {}", i, e);
                        }
                    }
                }
                // The verifier certifies each solution against its own
                // system: the original against the full constraint set,
                // the simplified against the compacted one.
                prop_assert!(verify_solution(&space, cs.constraints(), &b).is_ok(),
                    "original solution failed certification");
                prop_assert!(verify_solution(&space, small.constraints(), &a).is_ok(),
                    "simplified solution failed certification");
            }
            (Err(_), Err(_)) => {}
            // Eliminating an internal variable can erase a violation
            // *only* if the violating path ran through... it cannot:
            // path contraction preserves const-to-const consequences.
            (b, a) => prop_assert!(false,
                "satisfiability changed: before={} after={}",
                b.is_ok(), a.is_ok()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Online cycle collapse is solution-preserving per coordinate: the
    /// same random system solved with and without the pre-collapser
    /// agrees at *every* variable on *every* qualifier coordinate, and
    /// both solutions certify under the independent verifier.
    #[test]
    fn online_collapse_preserves_solutions_per_coordinate(
        raw in prop::collection::vec((0u8..10, 0u8..10), 0..24),
    ) {
        let space = three_space();
        let vs = mk_supply();
        let decode = |c: u8| -> Qual {
            if (c as usize) < NVARS {
                Qual::Var(QVar::from_index(c as usize))
            } else {
                Qual::Const(QualSet::from_bits(u64::from(c) & space.top().bits()))
            }
        };
        let mut plain = ConstraintSet::new();
        let mut online = ConstraintSet::new();
        online.enable_online_collapse();
        for &(l, r) in &raw {
            plain.add(decode(l), decode(r));
            online.add(decode(l), decode(r));
        }
        match (plain.solve(&space, &vs), online.solve(&space, &vs)) {
            (Ok(p), Ok(o)) => {
                for i in 0..NVARS {
                    let v = QVar::from_index(i);
                    if let Err(e) = same_per_coordinate(&space, p.least(v), o.least(v)) {
                        prop_assert!(false, "least at var {}: {}", i, e);
                    }
                    if let Err(e) = same_per_coordinate(&space, p.greatest(v), o.greatest(v)) {
                        prop_assert!(false, "greatest at var {}: {}", i, e);
                    }
                }
                prop_assert!(verify_solution(&space, plain.constraints(), &p).is_ok());
                prop_assert!(verify_solution(&space, online.constraints(), &o).is_ok());
            }
            (Err(p), Err(o)) => prop_assert_eq!(p, o, "diagnostics diverge under collapse"),
            (p, o) => prop_assert!(false,
                "collapse changed satisfiability: plain={} online={}",
                p.is_ok(), o.is_ok()),
        }
    }

    /// `truncate` rolls the collapser back in lockstep: cutting a
    /// collapsed set to a prefix behaves exactly like building only the
    /// prefix from scratch.
    #[test]
    fn collapser_rollback_matches_fresh_prefix(
        raw in prop::collection::vec((0u8..10, 0u8..10), 1..24),
        cut_raw in 0usize..64,
    ) {
        let space = three_space();
        let vs = mk_supply();
        let decode = |c: u8| -> Qual {
            if (c as usize) < NVARS {
                Qual::Var(QVar::from_index(c as usize))
            } else {
                Qual::Const(QualSet::from_bits(u64::from(c) & space.top().bits()))
            }
        };
        let cut = cut_raw % (raw.len() * 2 + 1);

        let mut whole = ConstraintSet::new();
        whole.enable_online_collapse();
        for &(l, r) in &raw {
            // Equalities, so the collapser actually has cycles to merge.
            whole.add(decode(l), decode(r));
            whole.add(decode(r), decode(l));
        }
        whole.truncate(cut);

        let mut prefix = ConstraintSet::new();
        prefix.enable_online_collapse();
        for c in whole.constraints() {
            prefix.extend([*c]);
        }
        prop_assert_eq!(whole.constraints().len(), cut.min(raw.len() * 2));
        prop_assert_eq!(
            whole.collapser().map(qual_solve::Collapser::merged),
            prefix.collapser().map(qual_solve::Collapser::merged),
            "rollback left a different merge count than a fresh build"
        );
        // And the rolled-back set still solves identically to the fresh
        // prefix on both solver paths.
        match (whole.solve(&space, &vs), prefix.solve(&space, &vs)) {
            (Ok(w), Ok(p)) => {
                for i in 0..NVARS {
                    let v = QVar::from_index(i);
                    prop_assert_eq!(w.least(v), p.least(v), "least at var {}", i);
                    prop_assert_eq!(w.greatest(v), p.greatest(v), "greatest at var {}", i);
                }
            }
            (Err(w), Err(p)) => prop_assert_eq!(w, p),
            (w, p) => prop_assert!(false,
                "rollback changed satisfiability: whole={} prefix={}",
                w.is_ok(), p.is_ok()),
        }
    }
}
