//! Golden-file tests for `qual_solve::diag` rendering: span excerpts,
//! diagnostic batches, and unsat explanation paths are compared
//! byte-for-byte against fixtures under `tests/golden/`.
//!
//! To regenerate after an intentional rendering change:
//!
//! ```text
//! QUAL_BLESS=1 cargo test -p qual-solve --test golden_diag
//! ```
//!
//! then inspect the diff before committing.

use std::fs;
use std::path::PathBuf;

use qual_lattice::QualSpace;
use qual_solve::diag::{render_diagnostics, render_explanation, render_span};
use qual_solve::{explain, Diagnostic, Phase, Provenance, VarSupply};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("QUAL_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with QUAL_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "rendering drifted from {}; if intentional, re-bless with QUAL_BLESS=1",
        path.display()
    );
}

#[test]
fn span_excerpt_renders_stably() {
    let src = "int f(const char *s) {\n    *s = 0;\n    return 1;\n}\n";
    let lo = src.find("*s = 0").unwrap() as u32;
    let out = render_span(src, lo, lo + 6, "write through const pointer");
    check("span_excerpt.txt", &out);
}

#[test]
fn diagnostic_batch_renders_stably() {
    let src = "int g(int *p) {\n    bad syntax here\n    return *p;\n}\n";
    let lo = src.find("bad").unwrap() as u32;
    let diags = vec![
        Diagnostic::error(Phase::Parse, "expected `;`")
            .with_span(lo, lo + 3)
            .with_function("g"),
        Diagnostic::warning(Phase::Infer, "function body skipped").with_function("g"),
        Diagnostic::error(Phase::Verify, "solution failed certification"),
    ];
    let out = render_diagnostics(Some(src), &diags);
    check("diagnostic_batch.txt", &out);
}

/// The explanation-path fixture: a const declaration threaded through an
/// argument and a return value into an assignment, rendered both against
/// source text (line/column + excerpt) and without (byte offsets).
#[test]
fn explanation_path_renders_stably() {
    let src = "void h(const char *s) {\n    char *t = s;\n    *t = 0;\n}\n";
    let space = QualSpace::figure2();
    let mut vs = VarSupply::new();
    let mut cs = qual_solve::ConstraintSet::new();
    let konst = space.parse_set("const").unwrap();
    let nc = space.not_q(space.id("const").unwrap());
    let (a, b) = (vs.fresh(), vs.fresh());
    let decl = src.find("const char *s").unwrap() as u32;
    let init = src.find("char *t = s").unwrap() as u32;
    let store = src.find("*t = 0").unwrap() as u32;
    cs.add_with(konst, a, Provenance::at(decl, decl + 13, "declared const"));
    cs.add_with(a, b, Provenance::at(init, init + 11, "initialization"));
    cs.add_with(b, nc, Provenance::at(store, store + 6, "assignment"));
    let err = cs.solve(&space, &vs).unwrap_err();
    let exps = explain(&space, cs.constraints(), &err);
    assert_eq!(exps.len(), 1, "exactly one violation expected");

    let with_src = render_explanation(Some(src), &space, &exps[0]);
    check("explanation_path.txt", &with_src);

    let without_src = render_explanation(None, &space, &exps[0]);
    check("explanation_path_no_src.txt", &without_src);
}

/// The coalesced-cycle fixture: two pointers aliased in a cycle (so the
/// online collapser merges their qualifier variables into one class)
/// with the const flowing through the class into a write. The rendered
/// chain must cite the *original* constraints — real source spans, in
/// program order — not the collapsed class representative.
#[test]
fn explanation_path_through_coalesced_cycle_renders_stably() {
    let src = "void k(const char *s) {\n    char *t = s;\n    char *u = t;\n    t = u;\n    *u = 0;\n}\n";
    let space = QualSpace::figure2();
    let mut vs = VarSupply::new();
    let mut cs = qual_solve::ConstraintSet::new();
    cs.enable_online_collapse();
    let konst = space.parse_set("const").unwrap();
    let nc = space.not_q(space.id("const").unwrap());
    let (a, b, c) = (vs.fresh(), vs.fresh(), vs.fresh());
    let decl = src.find("const char *s").unwrap() as u32;
    let init_t = src.find("char *t = s").unwrap() as u32;
    let init_u = src.find("char *u = t").unwrap() as u32;
    let back = src.find("t = u").unwrap() as u32;
    let store = src.find("*u = 0").unwrap() as u32;
    cs.add_with(konst, a, Provenance::at(decl, decl + 13, "declared const"));
    cs.add_with(a, b, Provenance::at(init_t, init_t + 11, "initialization"));
    cs.add_with(b, c, Provenance::at(init_u, init_u + 11, "initialization"));
    cs.add_with(c, b, Provenance::at(back, back + 5, "assignment"));
    cs.add_with(c, nc, Provenance::at(store, store + 6, "assignment"));

    // The t/u cycle really did coalesce online — the fixture is
    // worthless if the collapsed path never runs.
    assert_eq!(
        cs.collapser().map(qual_solve::Collapser::merged),
        Some(1),
        "the b/c alias cycle must merge during generation"
    );

    let err = cs.solve(&space, &vs).unwrap_err();
    let exps = explain(&space, cs.constraints(), &err);
    assert_eq!(exps.len(), 1, "exactly one violation expected");
    // Every step cites a real source span (no synthetic provenance from
    // the collapsed representative leaks into the chain).
    for step in &exps[0].steps {
        assert!(
            step.origin.hi > step.origin.lo,
            "step lost its original span: {step:?}"
        );
    }

    let with_src = render_explanation(Some(src), &space, &exps[0]);
    check("explanation_coalesced_cycle.txt", &with_src);
}
