//! The dense solver hot path: CSR adjacency, epoch-deduplicated
//! worklist, and exact graph shrinking (cycle collapse + chain
//! coalescing) before propagation.
//!
//! The reference solver in [`crate::solver`] pointer-chases a
//! `Vec<Vec<(u32, u64)>>` per propagation step. This module rebuilds the
//! same fixpoint on dense data:
//!
//! * **CSR adjacency** — edges live in flat `u32`/`u64` arrays,
//!   segregated by shape: full-mask edges (the overwhelming majority)
//!   propagate with a bare word OR/AND, masked edges carry their mask in
//!   a parallel array. One offsets array per direction indexes both.
//! * **Epoch worklist** — membership is a `u32` generation tag per
//!   variable instead of a hash set or a cleared bool vector; the least
//!   pass tags with 1, the greatest pass with 2, so nothing is ever
//!   reset between passes.
//! * **Cycle collapse** — full-mask strongly connected components are
//!   contracted through a union-find before propagation (seeded by the
//!   online [`crate::simplify::Collapser`], completed by an iterative
//!   Tarjan pass). Every member of a full-mask cycle provably shares one
//!   least and one greatest value, so contraction is exact.
//! * **Chain coalescing** — a representative whose *only* lower bound is
//!   one full-mask in-edge is an alias of its predecessor in the least
//!   solution (dually for single full-mask out-edges and the greatest
//!   solution), so chains propagate in O(1) instead of O(length).
//!
//! The output is byte-identical to the reference solver: same solution
//! tables, same violations in the same order carrying the *original*
//! constraints (so provenance, and therefore `explain` chains and
//! diagnostics, never see a representative). The differential suite in
//! `tests/dense_differential.rs` enforces this against the retained
//! reference path.
//!
//! Budget semantics: one unit per edge relaxation, as before, plus one
//! unit per variable eliminated by collapse or coalescing — elimination
//! is work the reference path would have paid for in relaxations, so a
//! starved budget still fails structurally instead of stalling.

use qual_lattice::{QualSet, QualSpace};

use crate::constraint::Constraint;
use crate::error::{SolveFailure, Violation};
use crate::simplify::Collapser;
use crate::solver::Solution;
use crate::term::Qual;

/// Sentinel for "not aliased".
const NONE: u32 = u32::MAX;

/// Tracks budget and cooperative cancellation for one solve.
struct Meter {
    spent: u64,
    max: u64,
    until_poll: u64,
    cancellable: bool,
}

enum Stop {
    OutOfBudget,
    Cancelled,
}

impl Meter {
    const CANCEL_BATCH: u64 = 1024;

    fn new(max: u64) -> Meter {
        Meter {
            spent: 0,
            max,
            until_poll: Meter::CANCEL_BATCH,
            cancellable: max != u64::MAX,
        }
    }

    /// Spends one unit; errors when the budget is already gone or the
    /// thread's cooperative deadline fired.
    #[inline]
    fn step(&mut self) -> Result<(), Stop> {
        if self.spent == self.max {
            return Err(Stop::OutOfBudget);
        }
        self.spent += 1;
        if self.cancellable {
            self.until_poll -= 1;
            if self.until_poll == 0 {
                self.until_poll = Meter::CANCEL_BATCH;
                if qual_faultpoint::cancel::expired() {
                    return Err(Stop::Cancelled);
                }
            }
        }
        Ok(())
    }

    fn fail(&self, stop: &Stop) -> SolveFailure {
        qual_obs::count("solve.steps", self.spent);
        match stop {
            Stop::OutOfBudget => SolveFailure::BudgetExceeded {
                steps: self.spent,
                limit: self.max,
            },
            Stop::Cancelled => SolveFailure::Cancelled { steps: self.spent },
        }
    }
}

/// One direction's adjacency in compressed sparse row form. Row `v`
/// holds the full-mask targets `full_targets[full_off[v]..full_off[v+1]]`
/// and the masked pairs at the same positions of the `masked_*` arrays.
struct Csr {
    full_off: Vec<u32>,
    full_targets: Vec<u32>,
    masked_off: Vec<u32>,
    masked_targets: Vec<u32>,
    masked_masks: Vec<u64>,
}

impl Csr {
    fn build(n: usize, full: &[(u32, u32)], masked: &[(u32, u32, u64)]) -> Csr {
        let (full_off, full_targets) = rows(n, full.iter().map(|&(s, t)| (s, t, 0)), full.len());
        let mut masked_masks = vec![0u64; masked.len()];
        let (masked_off, masked_targets) = {
            let (off, mut tgt) = (count_offsets(n, masked.iter().map(|e| e.0)), vec![0u32; masked.len()]);
            let mut cursor: Vec<u32> = off[..n].to_vec();
            for &(s, t, m) in masked {
                let at = cursor[s as usize] as usize;
                cursor[s as usize] += 1;
                tgt[at] = t;
                masked_masks[at] = m;
            }
            (off, tgt)
        };
        Csr {
            full_off,
            full_targets,
            masked_off,
            masked_targets,
            masked_masks,
        }
    }
}

fn count_offsets(n: usize, sources: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut off = vec![0u32; n + 1];
    for s in sources {
        off[s as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    off
}

fn rows(
    n: usize,
    edges: impl Iterator<Item = (u32, u32, u64)> + Clone,
    len: usize,
) -> (Vec<u32>, Vec<u32>) {
    let off = count_offsets(n, edges.clone().map(|e| e.0));
    let mut tgt = vec![0u32; len];
    let mut cursor: Vec<u32> = off[..n].to_vec();
    for (s, t, _) in edges {
        let at = cursor[s as usize] as usize;
        cursor[s as usize] += 1;
        tgt[at] = t;
    }
    (off, tgt)
}

/// Union-find lookup with path halving (safe here: this union-find is
/// solve-local and never rolled back).
#[inline]
fn find(parent: &mut [u32], mut v: u32) -> u32 {
    while parent[v as usize] != v {
        let gp = parent[parent[v as usize] as usize];
        parent[v as usize] = gp;
        v = gp;
    }
    v
}

/// Iterative Tarjan over the full-mask subgraph (endpoints already
/// contracted through `parent`); unions every non-trivial SCC. Returns
/// the number of variables newly folded into a representative.
fn collapse_sccs(n: usize, edges: &[(u32, u32)], parent: &mut [u32]) -> usize {
    if edges.is_empty() {
        return 0;
    }
    let (off, tgt) = rows(n, edges.iter().map(|&(s, t)| (s, t, 0)), edges.len());
    // index 0 = unvisited; indices start at 1.
    let mut index = vec![0u32; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 1u32;
    let mut merged = 0usize;
    // DFS frames: (node, next child position).
    let mut frames: Vec<(u32, u32)> = Vec::new();
    for &(root_edge, _) in edges {
        if index[root_edge as usize] != 0 {
            continue;
        }
        frames.push((root_edge, off[root_edge as usize]));
        index[root_edge as usize] = next_index;
        lowlink[root_edge as usize] = next_index;
        next_index += 1;
        stack.push(root_edge);
        on_stack[root_edge as usize] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < off[v as usize + 1] {
                let w = tgt[*child as usize];
                *child += 1;
                if index[w as usize] == 0 {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, off[w as usize]));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // Pop the component; union everything into `v`.
                    while let Some(&w) = stack.last() {
                        stack.pop();
                        on_stack[w as usize] = false;
                        if w != v {
                            parent[w as usize] = v;
                            merged += 1;
                        }
                        if w == v {
                            break;
                        }
                    }
                }
            }
        }
    }
    merged
}

/// Resolves alias chains to their terminus, memoized. `alias[r]` is the
/// node `r` reads its value from (or [`NONE`]); chains are acyclic
/// because a full-mask cycle would already have been collapsed.
fn resolve_chains(n: usize, alias: &[u32]) -> Vec<u32> {
    let mut resolve: Vec<u32> = (0..n as u32).collect();
    let mut done: Vec<bool> = alias.iter().map(|&a| a == NONE).collect();
    let mut chain: Vec<u32> = Vec::new();
    for r in 0..n as u32 {
        if done[r as usize] {
            continue;
        }
        let mut cur = r;
        while !done[cur as usize] {
            chain.push(cur);
            cur = alias[cur as usize];
        }
        let terminus = resolve[cur as usize];
        for &c in &chain {
            resolve[c as usize] = terminus;
            done[c as usize] = true;
        }
        chain.clear();
    }
    resolve
}

enum Dir {
    Join,
    Meet,
}

/// Worklist fixpoint over one CSR direction. `pass` is the epoch tag of
/// this pass (1 for least, 2 for greatest); a variable is on the list
/// iff `epoch[v] == pass`, so nothing is cleared between passes.
#[allow(clippy::too_many_arguments)]
fn propagate(
    csr: &Csr,
    val: &mut [u64],
    epoch: &mut [u32],
    work: &mut Vec<u32>,
    pass: u32,
    top: u64,
    dir: &Dir,
    meter: &mut Meter,
) -> Result<(), Stop> {
    while let Some(v) = work.pop() {
        epoch[v as usize] = pass - 1;
        let from = val[v as usize];
        let (f0, f1) = (csr.full_off[v as usize], csr.full_off[v as usize + 1]);
        for &w in &csr.full_targets[f0 as usize..f1 as usize] {
            meter.step()?;
            let cur = val[w as usize];
            let next = match dir {
                Dir::Join => cur | from,
                Dir::Meet => cur & from,
            };
            if next != cur {
                val[w as usize] = next;
                if epoch[w as usize] != pass {
                    epoch[w as usize] = pass;
                    work.push(w);
                }
            }
        }
        let (m0, m1) = (csr.masked_off[v as usize], csr.masked_off[v as usize + 1]);
        for (&w, &m) in csr.masked_targets[m0 as usize..m1 as usize]
            .iter()
            .zip(&csr.masked_masks[m0 as usize..m1 as usize])
        {
            meter.step()?;
            let cur = val[w as usize];
            let next = match dir {
                Dir::Join => cur | (from & m),
                Dir::Meet => cur & (from | (top & !m)),
            };
            if next != cur {
                val[w as usize] = next;
                if epoch[w as usize] != pass {
                    epoch[w as usize] = pass;
                    work.push(w);
                }
            }
        }
    }
    Ok(())
}

/// Dense counterpart of [`crate::solver::solve_budgeted_reference`]:
/// identical observable behavior, radically less propagation work.
pub(crate) fn solve_budgeted(
    space: &QualSpace,
    var_count: usize,
    constraints: &[Constraint],
    max_steps: u64,
    pre: Option<&Collapser>,
) -> Result<Solution, SolveFailure> {
    let _span = qual_obs::span("solve-propagate");
    qual_obs::peak("solve.vars", var_count as u64);
    qual_obs::peak("solve.coords", space.len() as u64);
    let top = space.top().bits();
    let bot = space.bottom().bits();
    let n = var_count;
    let mut meter = Meter::new(max_steps);

    // ---- classification: one pass, edges segregated by shape --------
    let mut violations = Vec::new();
    let mut seeds: Vec<(u32, u64)> = Vec::new();
    let mut caps: Vec<(u32, u64)> = Vec::new();
    let mut full_edges: Vec<(u32, u32)> = Vec::new();
    let mut masked_edges: Vec<(u32, u32, u64)> = Vec::new();
    for c in constraints {
        let m = c.mask & top;
        match (c.lhs, c.rhs) {
            (Qual::Const(l), Qual::Const(r)) => {
                if l.bits() & !r.bits() & m != 0 {
                    violations.push(Violation {
                        constraint: *c,
                        lower: l,
                        upper: r,
                    });
                }
            }
            (Qual::Const(l), Qual::Var(v)) => seeds.push((v.index() as u32, l.bits() & m)),
            (Qual::Var(v), Qual::Const(r)) => {
                caps.push((v.index() as u32, r.bits() | (top & !m)));
            }
            (Qual::Var(v), Qual::Var(w)) => {
                // Self-loops are inert (`v ⊓ m ⊑ v ⊔ ¬m` always holds),
                // and so are edges whose mask relates no coordinate.
                if v != w && m != 0 {
                    if m == top {
                        full_edges.push((v.index() as u32, w.index() as u32));
                    } else {
                        masked_edges.push((v.index() as u32, w.index() as u32, m));
                    }
                }
            }
        }
    }

    // ---- cycle collapse: online classes + solve-time SCC pass -------
    let mut parent: Vec<u32> = (0..n as u32).collect();
    if let Some(col) = pre {
        for v in 0..n as u32 {
            parent[v as usize] = col.class_of(v);
        }
    }
    let mut contracted: Vec<(u32, u32)> = Vec::with_capacity(full_edges.len());
    for &(v, w) in &full_edges {
        let (a, b) = (find(&mut parent, v), find(&mut parent, w));
        if a != b {
            contracted.push((a, b));
        }
    }
    collapse_sccs(n, &contracted, &mut parent);
    let root_of: Vec<u32> = (0..n as u32).map(|v| find(&mut parent, v)).collect();
    let collapsed = root_of
        .iter()
        .enumerate()
        .filter(|&(i, &r)| r != i as u32)
        .count();
    qual_obs::count("solve.collapsed", collapsed as u64);
    for _ in 0..collapsed {
        if let Err(stop) = meter.step() {
            return Err(meter.fail(&stop));
        }
    }

    // ---- fold bounds into representatives ---------------------------
    let mut least: Vec<u64> = vec![bot; n];
    for &(v, b) in &seeds {
        least[root_of[v as usize] as usize] |= b;
    }
    let mut greatest: Vec<u64> = vec![top; n];
    for &(v, b) in &caps {
        greatest[root_of[v as usize] as usize] &= b;
    }

    // Edges between representatives; intra-class edges became inert
    // self-loops and are dropped.
    let mut r_full: Vec<(u32, u32)> = Vec::with_capacity(full_edges.len());
    for &(v, w) in &full_edges {
        let (a, b) = (root_of[v as usize], root_of[w as usize]);
        if a != b {
            r_full.push((a, b));
        }
    }
    let mut r_masked: Vec<(u32, u32, u64)> = Vec::with_capacity(masked_edges.len());
    for &(v, w, m) in &masked_edges {
        let (a, b) = (root_of[v as usize], root_of[w as usize]);
        if a != b {
            r_masked.push((a, b, m));
        }
    }

    // ---- chain coalescing -------------------------------------------
    // in/out degree and the (sole) neighbor per representative; a bool
    // per side records whether that sole edge is full-mask.
    let mut in_count = vec![0u32; n];
    let mut in_pred = vec![0u32; n];
    let mut in_full = vec![false; n];
    let mut out_count = vec![0u32; n];
    let mut out_succ = vec![0u32; n];
    let mut out_full = vec![false; n];
    for &(a, b) in &r_full {
        in_count[b as usize] += 1;
        in_pred[b as usize] = a;
        in_full[b as usize] = true;
        out_count[a as usize] += 1;
        out_succ[a as usize] = b;
        out_full[a as usize] = true;
    }
    for &(a, b, _) in &r_masked {
        in_count[b as usize] += 1;
        in_full[b as usize] = false;
        out_count[a as usize] += 1;
        out_full[a as usize] = false;
    }
    // least(r) with exactly one lower bound — a single full-mask
    // in-edge and no constant seed — is exactly least(pred); dually for
    // greatest with a single full-mask out-edge and no constant cap.
    let mut least_alias = vec![NONE; n];
    let mut great_alias = vec![NONE; n];
    let mut coalesced = 0u64;
    for r in 0..n {
        if root_of[r] != r as u32 {
            continue;
        }
        if in_count[r] == 1 && in_full[r] && least[r] == bot {
            least_alias[r] = in_pred[r];
            coalesced += 1;
            if let Err(stop) = meter.step() {
                qual_obs::count("solve.coalesced", coalesced);
                return Err(meter.fail(&stop));
            }
        }
        if out_count[r] == 1 && out_full[r] && greatest[r] == top {
            great_alias[r] = out_succ[r];
            coalesced += 1;
            if let Err(stop) = meter.step() {
                qual_obs::count("solve.coalesced", coalesced);
                return Err(meter.fail(&stop));
            }
        }
    }
    qual_obs::count("solve.coalesced", coalesced);
    let resolve_l = resolve_chains(n, &least_alias);
    let resolve_g = resolve_chains(n, &great_alias);

    // ---- CSR construction -------------------------------------------
    // Forward edges re-sourced through least aliases; an aliased
    // target's sole in-edge is subsumed by the alias itself.
    let mut f_full: Vec<(u32, u32)> = Vec::with_capacity(r_full.len());
    let mut b_full: Vec<(u32, u32)> = Vec::with_capacity(r_full.len());
    for &(a, b) in &r_full {
        if least_alias[b as usize] == NONE {
            let s = resolve_l[a as usize];
            if s != b {
                f_full.push((s, b));
            }
        }
        if great_alias[a as usize] == NONE {
            let s = resolve_g[b as usize];
            if s != a {
                b_full.push((s, a));
            }
        }
    }
    let mut f_masked: Vec<(u32, u32, u64)> = Vec::with_capacity(r_masked.len());
    let mut b_masked: Vec<(u32, u32, u64)> = Vec::with_capacity(r_masked.len());
    for &(a, b, m) in &r_masked {
        if least_alias[b as usize] == NONE {
            let s = resolve_l[a as usize];
            if s != b {
                f_masked.push((s, b, m));
            }
        }
        if great_alias[a as usize] == NONE {
            let s = resolve_g[b as usize];
            if s != a {
                b_masked.push((s, a, m));
            }
        }
    }
    let fwd = Csr::build(n, &f_full, &f_masked);
    let bwd = Csr::build(n, &b_full, &b_masked);

    // ---- propagation with the epoch worklist ------------------------
    // Seeding only moved variables is exact: a variable still at ⊥ (or
    // ⊤ in the meet pass) changes nothing downstream by relaxing.
    let mut epoch = vec![0u32; n];
    let mut work: Vec<u32> = Vec::new();
    for r in 0..n {
        if least[r] != bot && least_alias[r] == NONE && root_of[r] == r as u32 {
            epoch[r] = 1;
            work.push(r as u32);
        }
    }
    if let Err(stop) = propagate(&fwd, &mut least, &mut epoch, &mut work, 1, top, &Dir::Join, &mut meter) {
        return Err(meter.fail(&stop));
    }
    work.clear();
    for r in 0..n {
        if greatest[r] != top && great_alias[r] == NONE && root_of[r] == r as u32 {
            epoch[r] = 2;
            work.push(r as u32);
        }
    }
    if let Err(stop) = propagate(&bwd, &mut greatest, &mut epoch, &mut work, 2, top, &Dir::Meet, &mut meter) {
        return Err(meter.fail(&stop));
    }
    // The `solve.steps` counter reports worklist relaxations only, so
    // it is comparable with the reference solver's count; the budget
    // meter additionally charged one unit per collapsed variable and
    // coalesced alias (reported as `solve.collapsed`/`solve.coalesced`).
    qual_obs::count("solve.steps", meter.spent - collapsed as u64 - coalesced);

    // ---- expansion: aliases, then class members ---------------------
    for r in 0..n {
        if least_alias[r] != NONE {
            least[r] = least[resolve_l[r] as usize];
        }
        if great_alias[r] != NONE {
            greatest[r] = greatest[resolve_g[r] as usize];
        }
    }
    let least_out: Vec<QualSet> = (0..n)
        .map(|v| QualSet::from_bits(least[root_of[v] as usize]))
        .collect();
    let greatest_out: Vec<QualSet> = (0..n)
        .map(|v| QualSet::from_bits(greatest[root_of[v] as usize]))
        .collect();

    // ---- satisfiability sweep, in constraint order ------------------
    for c in constraints {
        if let (Qual::Var(v), Qual::Const(r)) = (c.lhs, c.rhs) {
            let lo = least_out[v.index()];
            if lo.bits() & !r.bits() & c.mask & top != 0 {
                violations.push(Violation {
                    constraint: *c,
                    lower: lo,
                    upper: r,
                });
            }
        }
    }

    if violations.is_empty() {
        Ok(Solution::from_parts(least_out, greatest_out))
    } else {
        Err(SolveFailure::Unsat(crate::error::SolveError { violations }))
    }
}
