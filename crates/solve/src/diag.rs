//! Human-readable diagnostics: renders a byte-span against its source
//! text as `line:col` plus a caret excerpt — used by the front ends to
//! report qualifier violations the way a compiler would.
//!
//! Also home of [`Diagnostic`], the unified fault record every pipeline
//! phase (lexing, parsing, sema, qualifier inference, constraint
//! solving) reports through, so a batch driver can render and count
//! failures from any layer the same way.

use std::fmt;

use qual_lattice::{Polarity, QualSet, QualSpace};

use crate::error::SolveError;
use crate::explain::Explanation;

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The subject (file, function, …) was analyzed, with caveats.
    Warning,
    /// The subject (or part of it) could not be analyzed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which pipeline stage produced a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tokenizing source text.
    Lex,
    /// Parsing a translation unit.
    Parse,
    /// Name resolution and type checking.
    Sema,
    /// Qualifier-constraint generation.
    Infer,
    /// Constraint solving.
    Solve,
    /// Independent certification of solver results
    /// (see [`crate::verify`]).
    Verify,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
            Phase::Infer => "infer",
            Phase::Solve => "solve",
            Phase::Verify => "verify",
        })
    }
}

/// One fault from any pipeline phase: severity, phase, optional source
/// byte-span, optional function attribution, and a message. This is the
/// `skipped` side-channel currency of the fault-isolated pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Which stage reported it.
    pub phase: Phase,
    /// Byte range in the source, when known.
    pub span: Option<(u32, u32)>,
    /// The function that was skipped or implicated, when known.
    pub function: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// An error diagnostic with no span or function attribution.
    #[must_use]
    pub fn error(phase: Phase, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            phase,
            span: None,
            function: None,
            message: message.into(),
        }
    }

    /// A warning diagnostic with no span or function attribution.
    #[must_use]
    pub fn warning(phase: Phase, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(phase, message)
        }
    }

    /// Attaches a source byte range.
    #[must_use]
    pub fn with_span(mut self, lo: u32, hi: u32) -> Diagnostic {
        self.span = Some((lo, hi));
        self
    }

    /// Attributes the diagnostic to a function.
    #[must_use]
    pub fn with_function(mut self, name: impl Into<String>) -> Diagnostic {
        self.function = Some(name.into());
        self
    }

    /// Renders the diagnostic; with source text available, spans become
    /// `line:col` caret excerpts, otherwise byte offsets.
    #[must_use]
    pub fn render(&self, src: Option<&str>) -> String {
        let mut head = format!("{}[{}]", self.severity, self.phase);
        if let Some(f) = &self.function {
            head.push_str(&format!(" in `{f}`"));
        }
        match (self.span, src) {
            (Some((lo, hi)), Some(src)) => {
                format!("{head}: {}", render_span(src, lo, hi, &self.message))
            }
            (Some((lo, hi)), None) => {
                format!("{head}: {} (bytes {lo}..{hi})\n", self.message)
            }
            (None, _) => format!("{head}: {}\n", self.message),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render(None).trim_end())
    }
}

/// Renders a batch of diagnostics, one after another.
#[must_use]
pub fn render_diagnostics(src: Option<&str>, diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| d.render(src)).collect()
}

fn phase_rank(p: Phase) -> u8 {
    match p {
        Phase::Lex => 0,
        Phase::Parse => 1,
        Phase::Sema => 2,
        Phase::Infer => 3,
        Phase::Solve => 4,
        Phase::Verify => 5,
    }
}

fn severity_rank(s: Severity) -> u8 {
    match s {
        Severity::Error => 0,
        Severity::Warning => 1,
    }
}

/// Sorts diagnostics into the canonical presentation order: by source
/// span (spanless last), then pipeline phase, severity, function, and
/// message. The sort is stable, so diagnostics that tie on every key
/// keep their pipeline emission order. Batch drivers sort through this
/// one function so that output order cannot depend on scheduling — a
/// parallel analysis must render the same bytes as a serial one.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        let a_span = a.span.map_or((u32::MAX, u32::MAX), |s| s);
        let b_span = b.span.map_or((u32::MAX, u32::MAX), |s| s);
        a_span
            .cmp(&b_span)
            .then_with(|| phase_rank(a.phase).cmp(&phase_rank(b.phase)))
            .then_with(|| severity_rank(a.severity).cmp(&severity_rank(b.severity)))
            .then_with(|| a.function.cmp(&b.function))
            .then_with(|| a.message.cmp(&b.message))
    });
}

/// Converts every violation of a [`SolveError`] into [`Diagnostic`]s
/// carrying the violated constraints' provenance spans.
#[must_use]
pub fn diagnostics_from_unsat(err: &SolveError) -> Vec<Diagnostic> {
    err.violations
        .iter()
        .map(|v| {
            let o = v.constraint.origin;
            let d = Diagnostic::error(
                Phase::Solve,
                format!("unsatisfiable qualifier constraint ({})", o.what),
            );
            if (o.lo, o.hi) == (0, 0) {
                d
            } else {
                d.with_span(o.lo, o.hi)
            }
        })
        .collect()
}

/// A rendered source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in bytes).
    pub col: usize,
}

/// Computes the 1-based line/column of byte offset `at` in `src`
/// (clamped to the end of the text).
#[must_use]
pub fn line_col(src: &str, at: u32) -> LineCol {
    let at = (at as usize).min(src.len());
    let mut line = 1;
    let mut col = 1;
    for b in src.as_bytes()[..at].iter() {
        if *b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

/// Renders a single-span diagnostic:
///
/// ```text
/// error: <message>
///   --> 3:7
///    |
///  3 | y := 0;
///    |   ^^
/// ```
#[must_use]
pub fn render_span(src: &str, lo: u32, hi: u32, message: &str) -> String {
    let pos = line_col(src, lo);
    let mut out = format!("error: {message}\n  --> {}:{}\n", pos.line, pos.col);
    out.push_str(&render_excerpt(src, lo, hi));
    out
}

/// The caret-excerpt body of [`render_span`] — just the gutter, the
/// offending line, and the carets, with no `error:`/`-->` header — so
/// multi-step renderings (like explanation paths) can reuse it.
#[must_use]
pub fn render_excerpt(src: &str, lo: u32, hi: u32) -> String {
    let pos = line_col(src, lo);
    // Extract the offending line.
    let line_start = src[..(lo as usize).min(src.len())]
        .rfind('\n')
        .map_or(0, |i| i + 1);
    let line_end = src[line_start..]
        .find('\n')
        .map_or(src.len(), |i| line_start + i);
    let text = &src[line_start..line_end];
    let gutter = format!("{:>4}", pos.line);
    let mut out = format!("{} |\n", " ".repeat(gutter.len()));
    out.push_str(&format!("{gutter} | {text}\n"));
    let caret_start = (lo as usize).saturating_sub(line_start);
    let caret_len = ((hi.max(lo + 1) as usize).min(line_end) - (lo as usize).min(line_end))
        .max(1)
        .min(text.len().saturating_sub(caret_start).max(1));
    out.push_str(&format!(
        "{} | {}{}\n",
        " ".repeat(gutter.len()),
        " ".repeat(caret_start),
        "^".repeat(caret_len)
    ));
    out
}

/// Renders an unsat [`Explanation`] as a CQual-style error path: a
/// headline naming the offending qualifier, then the constraint chain
/// from the constant source to the violated bound, each step with its
/// provenance and (when the source text is available) a `line:col`
/// caret excerpt.
///
/// ```text
/// error: qualifier `const` reaches a position that must not be `const`
///   constraint path (3 steps):
///    1. const ⊑ κ2            declared const pointee
///       --> 1:8
///        |
///      1 | void f(const char *s) { *s = 'x'; }
///        |        ^^^^^^^^^^^^
///    2. κ2 ⊑ κ5               argument
///    3. κ5 ⊑ ¬const           assignment through pointer
/// ```
#[must_use]
pub fn render_explanation(
    src: Option<&str>,
    space: &QualSpace,
    exp: &Explanation,
) -> String {
    let (name, polarity) = coordinate_of(space, exp.qualifier);
    let mut out = match polarity {
        Polarity::Positive => format!(
            "error: qualifier `{name}` reaches a position that must not be `{name}`\n"
        ),
        Polarity::Negative => format!(
            "error: a value possibly lacking `{name}` reaches a position that requires `{name}`\n"
        ),
    };
    out.push_str(&format!(
        "  constraint path ({} step{}):\n",
        exp.steps.len(),
        if exp.steps.len() == 1 { "" } else { "s" }
    ));
    for (i, step) in exp.steps.iter().enumerate() {
        out.push_str(&format!(
            "  {:>2}. {:<24} {}\n",
            i + 1,
            step.render(space),
            step.origin.what
        ));
        let o = step.origin;
        if (o.lo, o.hi) == (0, 0) {
            continue;
        }
        match src {
            Some(src) => {
                let pos = line_col(src, o.lo);
                out.push_str(&format!("      --> {}:{}\n", pos.line, pos.col));
                for line in render_excerpt(src, o.lo, o.hi).lines() {
                    out.push_str("      ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
            None => {
                out.push_str(&format!("      --> bytes {}..{}\n", o.lo, o.hi));
            }
        }
    }
    out
}

/// Names a single-coordinate qualifier set against its space; falls back
/// to the raw set rendering (treated as positive) when the set is not a
/// declared coordinate.
fn coordinate_of(space: &QualSpace, q: QualSet) -> (String, Polarity) {
    for (id, decl) in space.iter() {
        if 1u64 << id.index() == q.bits() {
            return (decl.name().to_owned(), decl.polarity());
        }
    }
    (space.render(q), Polarity::Positive)
}

/// Renders every violation of a [`SolveError`] against the source text
/// the constraints' provenances refer to.
#[must_use]
pub fn render_violations(src: &str, err: &SolveError) -> String {
    let mut out = String::new();
    for v in &err.violations {
        let o = v.constraint.origin;
        out.push_str(&render_span(
            src,
            o.lo,
            o.hi,
            &format!("unsatisfiable qualifier constraint ({})", o.what),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basics() {
        let src = "abc\ndef\nghi";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 3), LineCol { line: 1, col: 4 });
        assert_eq!(line_col(src, 4), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 9), LineCol { line: 3, col: 2 });
        // Clamped past the end.
        assert_eq!(line_col(src, 1000), LineCol { line: 3, col: 4 });
    }

    #[test]
    fn render_span_points_at_the_text() {
        let src = "let x = 1 in\ny := 0\nni";
        let d = render_span(src, 13, 19, "assignment through const");
        assert!(d.contains("--> 2:1"), "{d}");
        assert!(d.contains("y := 0"), "{d}");
        assert!(d.contains("^^^^^^"), "{d}");
    }

    #[test]
    fn caret_clamps_to_line() {
        let src = "short";
        let d = render_span(src, 2, 100, "x");
        assert!(d.contains("^^^"), "{d}");
        let d = render_span(src, 0, 0, "zero-width");
        assert!(d.contains('^'), "{d}");
    }

    #[test]
    fn diagnostic_renders_with_and_without_source() {
        let src = "int f(void) { return 1; }";
        let d = Diagnostic::error(Phase::Sema, "unknown variable `y`")
            .with_span(14, 20)
            .with_function("f");
        let with = d.render(Some(src));
        assert!(with.contains("error[sema] in `f`"), "{with}");
        assert!(with.contains("--> 1:15"), "{with}");
        assert!(with.contains("return 1"), "{with}");
        let without = d.render(None);
        assert!(without.contains("bytes 14..20"), "{without}");
        assert!(d.to_string().contains("unknown variable"), "{d}");
        let w = Diagnostic::warning(Phase::Infer, "skipped");
        assert!(w.render(None).starts_with("warning[infer]"), "{w}");
    }

    #[test]
    fn sort_orders_by_span_then_phase_and_is_stable() {
        let mk = |phase, lo_hi: Option<(u32, u32)>, f: &str, msg: &str| {
            let d = Diagnostic::error(phase, msg).with_function(f);
            match lo_hi {
                Some((lo, hi)) => d.with_span(lo, hi),
                None => d,
            }
        };
        let mut diags = vec![
            mk(Phase::Verify, None, "z", "spanless verify"),
            mk(Phase::Solve, Some((40, 44)), "g", "late span"),
            mk(Phase::Infer, Some((40, 44)), "g", "same span, earlier phase"),
            mk(Phase::Parse, Some((3, 7)), "f", "early span"),
            mk(Phase::Sema, None, "a", "spanless sema"),
        ];
        sort_diagnostics(&mut diags);
        let order: Vec<&str> =
            diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(
            order,
            [
                "early span",
                "same span, earlier phase",
                "late span",
                "spanless sema",
                "spanless verify",
            ]
        );

        // Any permutation of the same multiset sorts to identical bytes —
        // the property the parallel driver relies on.
        let mut rotated = vec![
            diags[3].clone(),
            diags[0].clone(),
            diags[4].clone(),
            diags[2].clone(),
            diags[1].clone(),
        ];
        sort_diagnostics(&mut rotated);
        assert_eq!(rotated, diags);

        // Stability: full ties keep their emission order.
        let twin_a = mk(Phase::Infer, Some((1, 2)), "f", "twin");
        let twin_b = mk(Phase::Infer, Some((1, 2)), "f", "twin");
        let mut twins = vec![twin_a.clone(), twin_b];
        sort_diagnostics(&mut twins);
        assert_eq!(twins[0], twin_a);
    }

    #[test]
    fn unsat_becomes_solve_diagnostics() {
        use crate::constraint::ConstraintSet;
        use crate::term::{Provenance, Qual, VarSupply};
        use qual_lattice::QualSpace;

        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let v = vs.fresh();
        let mut cs = ConstraintSet::new();
        cs.add_with(Qual::Const(space.top()), v, Provenance::synthetic("decl"));
        cs.add_with(v, Qual::Const(space.bottom()), Provenance::at(3, 7, "store"));
        let err = cs.solve(&space, &vs).unwrap_err();
        let ds = diagnostics_from_unsat(&err);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].phase, Phase::Solve);
        assert_eq!(ds[0].span, Some((3, 7)));
        assert!(ds[0].message.contains("store"), "{}", ds[0].message);
    }

    #[test]
    fn violations_render_against_source() {
        use crate::constraint::ConstraintSet;
        use crate::term::{Provenance, Qual, VarSupply};
        use qual_lattice::QualSpace;

        let src = "x := 0";
        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let v = vs.fresh();
        let mut cs = ConstraintSet::new();
        cs.add_with(
            Qual::Const(space.top()),
            v,
            Provenance::synthetic("declared const"),
        );
        cs.add_with(
            v,
            Qual::Const(space.bottom()),
            Provenance::at(0, 6, "assignment"),
        );
        let err = cs.solve(&space, &vs).unwrap_err();
        let d = render_violations(src, &err);
        assert!(d.contains("assignment"), "{d}");
        assert!(d.contains("x := 0"), "{d}");
    }
}
