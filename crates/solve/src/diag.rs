//! Human-readable diagnostics: renders a byte-span against its source
//! text as `line:col` plus a caret excerpt — used by the front ends to
//! report qualifier violations the way a compiler would.

use crate::error::SolveError;

/// A rendered source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in bytes).
    pub col: usize,
}

/// Computes the 1-based line/column of byte offset `at` in `src`
/// (clamped to the end of the text).
#[must_use]
pub fn line_col(src: &str, at: u32) -> LineCol {
    let at = (at as usize).min(src.len());
    let mut line = 1;
    let mut col = 1;
    for b in src.as_bytes()[..at].iter() {
        if *b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

/// Renders a single-span diagnostic:
///
/// ```text
/// error: <message>
///   --> 3:7
///    |
///  3 | y := 0;
///    |   ^^
/// ```
#[must_use]
pub fn render_span(src: &str, lo: u32, hi: u32, message: &str) -> String {
    let pos = line_col(src, lo);
    let mut out = format!("error: {message}\n  --> {}:{}\n", pos.line, pos.col);
    // Extract the offending line.
    let line_start = src[..(lo as usize).min(src.len())]
        .rfind('\n')
        .map_or(0, |i| i + 1);
    let line_end = src[line_start..]
        .find('\n')
        .map_or(src.len(), |i| line_start + i);
    let text = &src[line_start..line_end];
    let gutter = format!("{:>4}", pos.line);
    out.push_str(&format!("{} |\n", " ".repeat(gutter.len())));
    out.push_str(&format!("{gutter} | {text}\n"));
    let caret_start = (lo as usize).saturating_sub(line_start);
    let caret_len = ((hi.max(lo + 1) as usize).min(line_end) - (lo as usize).min(line_end))
        .max(1)
        .min(text.len().saturating_sub(caret_start).max(1));
    out.push_str(&format!(
        "{} | {}{}\n",
        " ".repeat(gutter.len()),
        " ".repeat(caret_start),
        "^".repeat(caret_len)
    ));
    out
}

/// Renders every violation of a [`SolveError`] against the source text
/// the constraints' provenances refer to.
#[must_use]
pub fn render_violations(src: &str, err: &SolveError) -> String {
    let mut out = String::new();
    for v in &err.violations {
        let o = v.constraint.origin;
        out.push_str(&render_span(
            src,
            o.lo,
            o.hi,
            &format!("unsatisfiable qualifier constraint ({})", o.what),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basics() {
        let src = "abc\ndef\nghi";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 3), LineCol { line: 1, col: 4 });
        assert_eq!(line_col(src, 4), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 9), LineCol { line: 3, col: 2 });
        // Clamped past the end.
        assert_eq!(line_col(src, 1000), LineCol { line: 3, col: 4 });
    }

    #[test]
    fn render_span_points_at_the_text() {
        let src = "let x = 1 in\ny := 0\nni";
        let d = render_span(src, 13, 19, "assignment through const");
        assert!(d.contains("--> 2:1"), "{d}");
        assert!(d.contains("y := 0"), "{d}");
        assert!(d.contains("^^^^^^"), "{d}");
    }

    #[test]
    fn caret_clamps_to_line() {
        let src = "short";
        let d = render_span(src, 2, 100, "x");
        assert!(d.contains("^^^"), "{d}");
        let d = render_span(src, 0, 0, "zero-width");
        assert!(d.contains('^'), "{d}");
    }

    #[test]
    fn violations_render_against_source() {
        use crate::constraint::ConstraintSet;
        use crate::term::{Provenance, Qual, VarSupply};
        use qual_lattice::QualSpace;

        let src = "x := 0";
        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let v = vs.fresh();
        let mut cs = ConstraintSet::new();
        cs.add_with(
            Qual::Const(space.top()),
            v,
            Provenance::synthetic("declared const"),
        );
        cs.add_with(
            v,
            Qual::Const(space.bottom()),
            Provenance::at(0, 6, "assignment"),
        );
        let err = cs.solve(&space, &vs).unwrap_err();
        let d = render_violations(src, &err);
        assert!(d.contains("assignment"), "{d}");
        assert!(d.contains("x := 0"), "{d}");
    }
}
