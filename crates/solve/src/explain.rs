//! Unsat explanation paths: a minimal chain of constraints showing *why*
//! a system has no solution.
//!
//! A [`crate::SolveError`] names the constraint whose upper bound was
//! exceeded, but the qualifier that exceeded it usually arrived from far
//! away — a `const` declared on one parameter, threaded through
//! assignments and calls into a position that is written. CQual renders
//! that journey as an error *path*; this module reconstructs it: for
//! each violation, walk the constraint graph backward from the violated
//! upper bound to a constant lower bound that supplies the offending
//! coordinate, using only edges whose masks transmit it. A breadth-first
//! search makes the chain minimal in the number of constraints.
//!
//! The result is a self-contained [`Explanation`] — source constraint,
//! variable-to-variable hops, violated sink, each with its provenance —
//! that [`crate::verify::verify_explanation`] can replay without
//! consulting the solver, and [`crate::diag::render_explanation`] can
//! print against the source text.

use std::collections::VecDeque;

use qual_lattice::{QualSet, QualSpace};

use crate::constraint::Constraint;
use crate::error::SolveError;
use crate::error::Violation;
use crate::term::Qual;

/// One certified reason a constraint system is unsatisfiable: a chain of
/// constraints forcing `qualifier` from a constant lower bound into a
/// constant upper bound that excludes it.
///
/// `steps[0].lhs` is the constant source, consecutive steps share a
/// variable (`steps[i].rhs == steps[i+1].lhs`), and the final step's
/// right side is the constant bound being exceeded. Every step's mask
/// relates `qualifier`, so the coordinate flows through the whole chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// The violation this explains.
    pub violation: Violation,
    /// The single offending coordinate, as its canonical bit.
    pub qualifier: QualSet,
    /// The chain, from constant source to violated constant sink.
    pub steps: Vec<Constraint>,
}

/// Extracts one minimal explanation chain per violation of `err`.
///
/// Violations whose offending coordinate cannot be traced back to a
/// constant source are omitted (with a correct solver this does not
/// happen: only constant lower bounds introduce coordinates), so every
/// returned explanation replays successfully through
/// [`crate::verify::verify_explanation`].
#[must_use]
pub fn explain(
    space: &QualSpace,
    constraints: &[Constraint],
    err: &SolveError,
) -> Vec<Explanation> {
    err.violations
        .iter()
        .filter_map(|v| explain_violation(space, constraints, v))
        .collect()
}

fn explain_violation(
    space: &QualSpace,
    constraints: &[Constraint],
    v: &Violation,
) -> Option<Explanation> {
    let top = space.top().bits();
    let offending = v.lower.bits() & !v.upper.bits() & v.constraint.mask & top;
    if offending == 0 {
        return None;
    }
    // Lowest offending coordinate: one concrete contradiction is enough
    // to certify unsatisfiability.
    let bit = offending & offending.wrapping_neg();
    let qualifier = QualSet::from_bits(bit);

    // `L ⊑ L′` violations are their own one-step explanation.
    let Qual::Var(sink) = v.constraint.lhs else {
        return Some(Explanation {
            violation: *v,
            qualifier,
            steps: vec![v.constraint],
        });
    };

    // Backward BFS from the sink variable over `κ ⊑ κ′` edges that
    // transmit `bit`, looking for a `L ⊑ κ` source that supplies it.
    let var_count = constraints
        .iter()
        .flat_map(|c| [c.lhs, c.rhs])
        .filter_map(Qual::as_var)
        .map(|q| q.index() + 1)
        .max()
        .unwrap_or(0);
    let mut bwd: Vec<Vec<(usize, &Constraint)>> = vec![Vec::new(); var_count];
    let mut source: Vec<Option<&Constraint>> = vec![None; var_count];
    for c in constraints {
        if c.mask & top & bit == 0 {
            continue;
        }
        match (c.lhs, c.rhs) {
            (Qual::Var(from), Qual::Var(to)) if from != to => {
                bwd[to.index()].push((from.index(), c));
            }
            (Qual::Const(l), Qual::Var(to)) if l.bits() & bit != 0 => {
                source[to.index()].get_or_insert(c);
            }
            _ => {}
        }
    }

    // parent[u] = the edge used to reach u from the sink side.
    let mut parent: Vec<Option<&Constraint>> = vec![None; var_count];
    let mut seen = vec![false; var_count];
    let mut queue = VecDeque::new();
    seen[sink.index()] = true;
    queue.push_back(sink.index());
    while let Some(u) = queue.pop_front() {
        if let Some(src) = source[u] {
            // Rebuild: source, then the hops from u forward to the sink,
            // then the violated constraint itself.
            let mut steps = vec![*src];
            let mut cur = u;
            while let Some(edge) = parent[cur] {
                steps.push(*edge);
                cur = edge
                    .rhs
                    .as_var()
                    .expect("parent edges are var-to-var")
                    .index();
            }
            steps.push(v.constraint);
            return Some(Explanation {
                violation: *v,
                qualifier,
                steps,
            });
        }
        for &(from, edge) in &bwd[u] {
            if !seen[from] {
                seen[from] = true;
                parent[from] = Some(edge);
                queue.push_back(from);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintSet;
    use crate::term::{Provenance, VarSupply};
    use crate::verify::verify_explanation;
    use qual_lattice::QualSpace;

    fn setup() -> (QualSpace, VarSupply, ConstraintSet) {
        (QualSpace::figure2(), VarSupply::new(), ConstraintSet::new())
    }

    #[test]
    fn chain_is_reconstructed_in_order() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let nc = space.not_q(space.id("const").unwrap());
        let (a, b, c) = (vs.fresh(), vs.fresh(), vs.fresh());
        cs.add_with(konst, a, Provenance::at(1, 6, "declared const"));
        cs.add_with(a, b, Provenance::at(10, 12, "argument"));
        cs.add_with(b, c, Provenance::at(20, 22, "return value"));
        cs.add_with(c, nc, Provenance::at(30, 36, "assignment"));
        let err = cs.solve(&space, &vs).unwrap_err();
        let exps = explain(&space, cs.constraints(), &err);
        assert_eq!(exps.len(), 1);
        let e = &exps[0];
        assert_eq!(e.steps.len(), 4);
        let whats: Vec<&str> = e.steps.iter().map(|s| s.origin.what).collect();
        assert_eq!(
            whats,
            ["declared const", "argument", "return value", "assignment"]
        );
        assert_eq!(verify_explanation(&space, e), Ok(()));
    }

    #[test]
    fn bfs_prefers_the_short_path() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let nc = space.not_q(space.id("const").unwrap());
        let (a, b, c, d) = (vs.fresh(), vs.fresh(), vs.fresh(), vs.fresh());
        // Long route: const ⊑ a ⊑ b ⊑ c ⊑ d; short route: const ⊑ c ⊑ d.
        cs.add_with(konst, a, Provenance::synthetic("far source"));
        cs.add(a, b);
        cs.add(b, c);
        cs.add_with(konst, c, Provenance::synthetic("near source"));
        cs.add(c, d);
        cs.add(d, nc);
        let err = cs.solve(&space, &vs).unwrap_err();
        let exps = explain(&space, cs.constraints(), &err);
        assert_eq!(exps.len(), 1);
        let e = &exps[0];
        assert_eq!(e.steps.len(), 3, "near source wins: {:?}", e.steps);
        assert_eq!(e.steps[0].origin.what, "near source");
        assert_eq!(verify_explanation(&space, e), Ok(()));
    }

    #[test]
    fn const_const_violation_is_single_step() {
        let (space, _vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        cs.add_with(konst, space.none(), Provenance::synthetic("cast"));
        let err = cs.solve_with_count(&space, 0).unwrap_err();
        let exps = explain(&space, cs.constraints(), &err);
        assert_eq!(exps.len(), 1);
        assert_eq!(exps[0].steps.len(), 1);
        assert_eq!(verify_explanation(&space, &exps[0]), Ok(()));
    }

    #[test]
    fn masked_edges_that_drop_the_coordinate_are_not_used() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let c_id = space.id("const").unwrap();
        let d_id = space.id("dynamic").unwrap();
        let nc = space.not_q(c_id);
        let (a, b) = (vs.fresh(), vs.fresh());
        cs.add_with(konst, a, Provenance::synthetic("source"));
        // This edge only relates `dynamic`, so const does not flow here…
        cs.add_masked(a, b, &[d_id], Provenance::synthetic("masked edge"));
        // …it flows here.
        cs.add_masked(a, b, &[c_id], Provenance::synthetic("const edge"));
        cs.add_with(b, nc, Provenance::synthetic("sink"));
        let err = cs.solve(&space, &vs).unwrap_err();
        let exps = explain(&space, cs.constraints(), &err);
        assert_eq!(exps.len(), 1);
        let whats: Vec<&str> =
            exps[0].steps.iter().map(|s| s.origin.what).collect();
        assert_eq!(whats, ["source", "const edge", "sink"]);
        assert_eq!(verify_explanation(&space, &exps[0]), Ok(()));
    }

    #[test]
    fn every_violation_gets_its_own_explanation() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let nc = space.not_q(space.id("const").unwrap());
        let (a, b) = (vs.fresh(), vs.fresh());
        cs.add(konst, a);
        cs.add_with(a, nc, Provenance::synthetic("first sink"));
        cs.add(konst, b);
        cs.add_with(b, nc, Provenance::synthetic("second sink"));
        let err = cs.solve(&space, &vs).unwrap_err();
        assert_eq!(err.violations.len(), 2);
        let exps = explain(&space, cs.constraints(), &err);
        assert_eq!(exps.len(), 2);
        for e in &exps {
            assert_eq!(verify_explanation(&space, e), Ok(()));
        }
    }

    #[test]
    fn negative_qualifier_violations_explain_too() {
        // nonzero is negative: its canonical bit set means "absent".
        let (space, mut vs, mut cs) = setup();
        let nz = space.id("nonzero").unwrap();
        let x = vs.fresh();
        cs.add_with(space.none(), x, Provenance::synthetic("zero literal"));
        cs.add_with(
            x,
            space.with_present(space.top(), nz),
            Provenance::synthetic("nonzero assertion"),
        );
        let err = cs.solve(&space, &vs).unwrap_err();
        let exps = explain(&space, cs.constraints(), &err);
        assert_eq!(exps.len(), 1);
        assert_eq!(exps[0].steps.len(), 2);
        assert_eq!(verify_explanation(&space, &exps[0]), Ok(()));
    }
}
