//! Independent certification of solver results.
//!
//! The solver is the single point of trust for every count the tools
//! report, so this module re-checks its answers with *different* code: a
//! claimed [`Solution`] is evaluated directly against every atomic
//! constraint, one qualifier coordinate at a time, and an unsat
//! [`Explanation`] is replayed step by step to confirm the contradiction
//! it claims. Neither check shares any logic with the worklist
//! propagation in [`crate::solver`] — the checker walks constraints, not
//! graphs, so a propagation bug cannot hide from it.
//!
//! A failed check is a [`CertificateError`] naming the exact constraint,
//! coordinate, and assignment that broke, so a certification failure is
//! itself a precise bug report against the solver.

use std::fmt;

use qual_lattice::{QualId, QualSet, QualSpace};

use crate::constraint::Constraint;
use crate::explain::Explanation;
use crate::solver::Solution;
use crate::term::{QVar, Qual};

/// Which of the two solutions a certificate check was evaluating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// The pointwise least solution.
    Least,
    /// The pointwise greatest solution.
    Greatest,
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Assignment::Least => "least",
            Assignment::Greatest => "greatest",
        })
    }
}

/// Why a claimed solution or explanation failed certification.
///
/// Every variant names the exact place the check broke, so a failure is
/// directly actionable: a [`CertificateError::Violated`] identifies the
/// constraint (with provenance) and the qualifier coordinate where the
/// claimed assignment does not satisfy `lhs ⊓ m ⊑ rhs ⊔ ¬m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertificateError {
    /// A constraint mentions a variable the solution does not cover.
    OutOfRange {
        /// Position of the constraint in the checked slice.
        index: usize,
        /// The uncovered variable.
        var: QVar,
        /// How many variables the solution covers.
        var_count: usize,
    },
    /// `least(v) ⊑ greatest(v)` does not hold.
    IllFormed {
        /// The offending variable.
        var: QVar,
        /// Its claimed least value.
        least: QualSet,
        /// Its claimed greatest value.
        greatest: QualSet,
    },
    /// A claimed value uses coordinates outside the qualifier space.
    OutOfSpace {
        /// The offending variable.
        var: QVar,
        /// Which solution carried the stray coordinate.
        assignment: Assignment,
        /// The offending value.
        value: QualSet,
    },
    /// A constraint does not hold under one of the two assignments.
    Violated {
        /// Position of the constraint in the checked slice.
        index: usize,
        /// The violated constraint (with provenance).
        constraint: Constraint,
        /// Which assignment broke it.
        assignment: Assignment,
        /// The qualifier coordinate where the order fails.
        qualifier: QualId,
        /// The evaluated left side.
        lhs: QualSet,
        /// The evaluated right side.
        rhs: QualSet,
    },
    /// An explanation path with no steps proves nothing.
    EmptyPath,
    /// The explanation's qualifier is not a single coordinate of the
    /// space.
    BadQualifier {
        /// The claimed qualifier bits.
        qualifier: QualSet,
    },
    /// The first step's lower side is not a lattice constant.
    SourceNotConstant,
    /// The first step's constant does not carry the claimed qualifier.
    SourceLacksQualifier,
    /// Two consecutive steps are not linked by a shared variable.
    BrokenLink {
        /// Index of the later of the two unlinked steps.
        step: usize,
    },
    /// A step's mask excludes the claimed qualifier, so the coordinate
    /// does not flow through it.
    MaskDropsQualifier {
        /// Index of the offending step.
        step: usize,
    },
    /// The last step's upper side is not a lattice constant.
    SinkNotConstant,
    /// The last step's constant admits the claimed qualifier, so there
    /// is no contradiction.
    SinkAdmitsQualifier,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::OutOfRange {
                index,
                var,
                var_count,
            } => write!(
                f,
                "constraint #{index} mentions {var} but the solution covers \
                 only {var_count} variable(s)"
            ),
            CertificateError::IllFormed {
                var,
                least,
                greatest,
            } => write!(
                f,
                "ill-formed solution: least({var}) = {least:?} is not below \
                 greatest({var}) = {greatest:?}"
            ),
            CertificateError::OutOfSpace {
                var,
                assignment,
                value,
            } => write!(
                f,
                "{assignment}({var}) = {value:?} uses coordinates outside \
                 the qualifier space"
            ),
            CertificateError::Violated {
                index,
                constraint,
                assignment,
                qualifier,
                ..
            } => write!(
                f,
                "constraint #{index} ({}) violated by the {assignment} \
                 solution at coordinate {qualifier}",
                constraint.origin
            ),
            CertificateError::EmptyPath => {
                f.write_str("explanation path is empty")
            }
            CertificateError::BadQualifier { qualifier } => write!(
                f,
                "explanation qualifier {qualifier:?} is not a single \
                 coordinate of the space"
            ),
            CertificateError::SourceNotConstant => {
                f.write_str("explanation path does not start at a constant lower bound")
            }
            CertificateError::SourceLacksQualifier => f.write_str(
                "explanation source constant does not carry the claimed qualifier",
            ),
            CertificateError::BrokenLink { step } => write!(
                f,
                "explanation steps {} and {step} are not linked by a shared \
                 variable",
                step - 1
            ),
            CertificateError::MaskDropsQualifier { step } => write!(
                f,
                "explanation step {step}'s mask excludes the claimed qualifier"
            ),
            CertificateError::SinkNotConstant => {
                f.write_str("explanation path does not end at a constant upper bound")
            }
            CertificateError::SinkAdmitsQualifier => f.write_str(
                "explanation sink admits the claimed qualifier: no contradiction",
            ),
        }
    }
}

impl std::error::Error for CertificateError {}

/// All coordinates where `lhs ⊑ rhs` fails under `mask`, as a word: a
/// coordinate's bit is set exactly when it is related (`mask`), high on
/// the left, and low on the right. Checking all 64 coordinates is one
/// AND-NOT per side instead of a per-coordinate loop, which is what
/// makes whole-set certification a single sweep over the constraints.
fn violated_coordinates(lhs: QualSet, rhs: QualSet, mask: u64) -> u64 {
    lhs.bits() & !rhs.bits() & mask
}

/// Checks a claimed [`Solution`] against every constraint plus
/// well-formedness, independently of how the solution was produced.
///
/// The checks, in order:
///
/// 1. every claimed value stays inside the space's coordinates;
/// 2. `least(v) ⊑ greatest(v)` for every covered variable;
/// 3. every constraint mentions only covered variables;
/// 4. every constraint `lhs ⊓ m ⊑ rhs ⊔ ¬m` holds at every coordinate
///    under **both** the least and the greatest assignment, checked
///    word-parallel in a single batch sweep over the constraint slice.
///
/// # Errors
///
/// Returns the first [`CertificateError`] found, naming the exact
/// variable or constraint and coordinate that failed.
pub fn verify_solution(
    space: &QualSpace,
    constraints: &[Constraint],
    sol: &Solution,
) -> Result<(), CertificateError> {
    let _span = qual_obs::span("certify");
    let top = space.top().bits();
    // Coordinate lookup by canonical bit index, so a violating word maps
    // back to its `QualId` without re-walking the space per constraint.
    let mut coords: [Option<QualId>; 64] = [None; 64];
    for (qualifier, _) in space.iter() {
        coords[qualifier.index()] = Some(qualifier);
    }
    for i in 0..sol.var_count() {
        let var = QVar::from_index(i);
        let (lo, hi) = (sol.least(var), sol.greatest(var));
        for (assignment, value) in
            [(Assignment::Least, lo), (Assignment::Greatest, hi)]
        {
            if value.bits() & !top != 0 {
                return Err(CertificateError::OutOfSpace {
                    var,
                    assignment,
                    value,
                });
            }
        }
        if !space.le(lo, hi) {
            return Err(CertificateError::IllFormed {
                var,
                least: lo,
                greatest: hi,
            });
        }
    }
    for (index, c) in constraints.iter().enumerate() {
        for side in [c.lhs, c.rhs] {
            if let Qual::Var(var) = side {
                if var.index() >= sol.var_count() {
                    return Err(CertificateError::OutOfRange {
                        index,
                        var,
                        var_count: sol.var_count(),
                    });
                }
            }
        }
        for (assignment, lhs, rhs) in [
            (Assignment::Least, sol.eval_least(c.lhs), sol.eval_least(c.rhs)),
            (
                Assignment::Greatest,
                sol.eval_greatest(c.lhs),
                sol.eval_greatest(c.rhs),
            ),
        ] {
            let bad = violated_coordinates(lhs, rhs, c.mask & top);
            if bad != 0 {
                // Lowest set bit = lowest coordinate index, matching the
                // per-coordinate iteration order this check replaced.
                let qualifier = coords[bad.trailing_zeros() as usize]
                    .expect("violations are masked to the space's coordinates");
                return Err(CertificateError::Violated {
                    index,
                    constraint: *c,
                    assignment,
                    qualifier,
                    lhs,
                    rhs,
                });
            }
        }
    }
    Ok(())
}

/// Replays an unsat [`Explanation`] to confirm it really proves a
/// contradiction, without consulting the solver or the full constraint
/// set.
///
/// The replay argument: step 0's constant carries the claimed coordinate
/// under its mask, so any satisfying assignment must put the coordinate
/// into step 0's variable; each later step's mask keeps relating the
/// coordinate and its lower side is the previous step's upper side, so
/// the coordinate is forced along the whole chain; the final constant
/// upper bound excludes it. No assignment can do both, hence unsat.
///
/// # Errors
///
/// Returns the [`CertificateError`] describing the first broken link of
/// a chain that does *not* prove a contradiction.
pub fn verify_explanation(
    space: &QualSpace,
    exp: &Explanation,
) -> Result<(), CertificateError> {
    let _span = qual_obs::span("certify");
    let steps = &exp.steps;
    if steps.is_empty() {
        return Err(CertificateError::EmptyPath);
    }
    let top = space.top().bits();
    let bit = exp.qualifier.bits();
    if bit == 0 || !bit.is_power_of_two() || bit & top == 0 {
        return Err(CertificateError::BadQualifier {
            qualifier: exp.qualifier,
        });
    }
    for (step, c) in steps.iter().enumerate() {
        if c.mask & top & bit == 0 {
            return Err(CertificateError::MaskDropsQualifier { step });
        }
    }
    let Qual::Const(source) = steps[0].lhs else {
        return Err(CertificateError::SourceNotConstant);
    };
    if source.bits() & bit == 0 {
        return Err(CertificateError::SourceLacksQualifier);
    }
    for step in 1..steps.len() {
        let linked = matches!(
            (steps[step - 1].rhs, steps[step].lhs),
            (Qual::Var(prev), Qual::Var(next)) if prev == next
        );
        if !linked {
            return Err(CertificateError::BrokenLink { step });
        }
    }
    let last = steps[steps.len() - 1];
    let Qual::Const(sink) = last.rhs else {
        return Err(CertificateError::SinkNotConstant);
    };
    if sink.bits() & bit != 0 {
        return Err(CertificateError::SinkAdmitsQualifier);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintSet;
    use crate::explain::explain;
    use crate::term::{Provenance, VarSupply};
    use qual_lattice::QualSpace;

    fn setup() -> (QualSpace, VarSupply, ConstraintSet) {
        (QualSpace::figure2(), VarSupply::new(), ConstraintSet::new())
    }

    #[test]
    fn solver_solutions_certify() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let (a, b, c) = (vs.fresh(), vs.fresh(), vs.fresh());
        cs.add(konst, a);
        cs.add(a, b);
        cs.add(b, c);
        cs.add(c, space.not_q(space.id("dynamic").unwrap()));
        let sol = cs.solve(&space, &vs).unwrap();
        assert_eq!(verify_solution(&space, cs.constraints(), &sol), Ok(()));
    }

    #[test]
    fn masked_solver_solutions_certify() {
        let (space, mut vs, mut cs) = setup();
        let cd = space.parse_set("const dynamic").unwrap();
        let c_id = space.id("const").unwrap();
        let (v, w) = (vs.fresh(), vs.fresh());
        cs.add(cd, v);
        cs.add_masked(v, w, &[c_id], Provenance::synthetic("wf"));
        cs.add_masked(w, space.bottom(), &[space.id("dynamic").unwrap()], Provenance::synthetic("a"));
        let sol = cs.solve(&space, &vs).unwrap();
        assert_eq!(verify_solution(&space, cs.constraints(), &sol), Ok(()));
    }

    #[test]
    fn corrupted_least_is_rejected() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let (a, b) = (vs.fresh(), vs.fresh());
        cs.add(konst, a);
        cs.add(a, b);
        let sol = cs.solve(&space, &vs).unwrap();
        // Corrupt: drop `const` from least(b), breaking `a ⊑ b` under
        // the least assignment.
        let least = vec![sol.least(a), space.bottom()];
        let greatest = vec![sol.greatest(a), sol.greatest(b)];
        let bad = Solution::from_parts(least, greatest);
        let err = verify_solution(&space, cs.constraints(), &bad).unwrap_err();
        match err {
            CertificateError::Violated {
                index,
                assignment,
                qualifier,
                ..
            } => {
                assert_eq!(index, 1, "the a ⊑ b edge is the broken one");
                assert_eq!(assignment, Assignment::Least);
                assert_eq!(qualifier, space.id("const").unwrap());
            }
            other => panic!("expected Violated, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_greatest_is_rejected() {
        let (space, mut vs, mut cs) = setup();
        let nc = space.not_q(space.id("const").unwrap());
        let (a, b) = (vs.fresh(), vs.fresh());
        cs.add(a, b);
        cs.add(b, nc);
        let sol = cs.solve(&space, &vs).unwrap();
        // Corrupt: claim greatest(a) = ⊤ even though `a ⊑ b ⊑ ¬const`.
        let least = vec![sol.least(a), sol.least(b)];
        let greatest = vec![space.top(), sol.greatest(b)];
        let bad = Solution::from_parts(least, greatest);
        let err = verify_solution(&space, cs.constraints(), &bad).unwrap_err();
        assert!(
            matches!(
                err,
                CertificateError::Violated {
                    index: 0,
                    assignment: Assignment::Greatest,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn ill_formed_solution_is_rejected() {
        let (space, mut vs, cs) = setup();
        let _ = vs.fresh();
        // least = ⊤ but greatest = ⊥: not a lattice interval.
        let bad = Solution::from_parts(vec![space.top()], vec![space.bottom()]);
        let err = verify_solution(&space, cs.constraints(), &bad).unwrap_err();
        assert!(matches!(err, CertificateError::IllFormed { .. }), "got {err:?}");
    }

    #[test]
    fn out_of_space_value_is_rejected() {
        let (space, mut vs, cs) = setup();
        let _ = vs.fresh();
        let stray = QualSet::from_bits(1u64 << 63);
        let bad = Solution::from_parts(vec![stray], vec![space.top()]);
        let err = verify_solution(&space, cs.constraints(), &bad).unwrap_err();
        assert!(matches!(err, CertificateError::OutOfSpace { .. }), "got {err:?}");
    }

    #[test]
    fn uncovered_variable_is_rejected() {
        let (space, mut vs, mut cs) = setup();
        let a = vs.fresh();
        let phantom = vs.fresh();
        cs.add(a, phantom);
        let sol = cs.solve(&space, &vs).unwrap();
        // A solution sized for fewer variables than the constraints use.
        let short =
            Solution::from_parts(vec![sol.least(a)], vec![sol.greatest(a)]);
        let err = verify_solution(&space, cs.constraints(), &short).unwrap_err();
        assert!(matches!(err, CertificateError::OutOfRange { .. }), "got {err:?}");
    }

    #[test]
    fn real_explanations_replay() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let nc = space.not_q(space.id("const").unwrap());
        let (a, b) = (vs.fresh(), vs.fresh());
        cs.add_with(konst, a, Provenance::synthetic("declared const"));
        cs.add_with(a, b, Provenance::synthetic("argument"));
        cs.add_with(b, nc, Provenance::at(3, 9, "assignment"));
        let err = cs.solve(&space, &vs).unwrap_err();
        let exps = explain(&space, cs.constraints(), &err);
        assert_eq!(exps.len(), 1);
        assert_eq!(exps[0].steps.len(), 3, "source, edge, sink");
        assert_eq!(verify_explanation(&space, &exps[0]), Ok(()));
    }

    #[test]
    fn fabricated_paths_are_rejected() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let nc = space.not_q(space.id("const").unwrap());
        let (a, b) = (vs.fresh(), vs.fresh());
        cs.add_with(konst, a, Provenance::synthetic("declared const"));
        cs.add_with(a, b, Provenance::synthetic("argument"));
        cs.add_with(b, nc, Provenance::synthetic("assignment"));
        let err = cs.solve(&space, &vs).unwrap_err();
        let real = explain(&space, cs.constraints(), &err).remove(0);
        let all = cs.constraints();

        // Empty path.
        let mut forged = real.clone();
        forged.steps.clear();
        assert_eq!(
            verify_explanation(&space, &forged),
            Err(CertificateError::EmptyPath)
        );

        // Unlinked chain: skip the middle edge so a ⊑ b never happens.
        let forged = Explanation {
            steps: vec![all[0], all[2]],
            ..real.clone()
        };
        assert_eq!(
            verify_explanation(&space, &forged),
            Err(CertificateError::BrokenLink { step: 1 })
        );

        // Wrong qualifier coordinate: `dynamic` never flowed anywhere.
        let mut forged = real.clone();
        forged.qualifier = QualSet::from_bits(
            1u64 << space.id("dynamic").unwrap().index(),
        );
        assert_eq!(
            verify_explanation(&space, &forged),
            Err(CertificateError::SourceLacksQualifier)
        );

        // Sink that actually admits const: no contradiction shown.
        let mut forged = real.clone();
        let n = forged.steps.len();
        forged.steps[n - 1].rhs = Qual::Const(space.top());
        assert_eq!(
            verify_explanation(&space, &forged),
            Err(CertificateError::SinkAdmitsQualifier)
        );

        // A qualifier set that is not a single coordinate.
        let mut forged = real.clone();
        forged.qualifier = space.top();
        assert!(matches!(
            verify_explanation(&space, &forged),
            Err(CertificateError::BadQualifier { .. })
        ));

        // Mask that excludes the coordinate mid-chain.
        let mut forged = real;
        forged.steps[1].mask = 0;
        assert_eq!(
            verify_explanation(&space, &forged),
            Err(CertificateError::MaskDropsQualifier { step: 1 })
        );
    }

    #[test]
    fn certificate_errors_render() {
        let (space, mut vs, mut cs) = setup();
        let a = vs.fresh();
        cs.add(space.parse_set("const").unwrap(), a);
        let sol = cs.solve(&space, &vs).unwrap();
        let bad = Solution::from_parts(vec![space.bottom()], vec![space.top()]);
        let err = verify_solution(&space, cs.constraints(), &bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("constraint #0"), "got: {msg}");
        assert!(msg.contains("least"), "got: {msg}");
        drop(sol);
    }
}
