//! The atomic-subtyping solver: least and greatest solutions by worklist
//! propagation over the constraint graph.
//!
//! For a fixed qualifier set the lattice has constant height, so the
//! worklist pass is linear in the number of constraints — the complexity
//! the paper cites from Henglein–Rehof 1997.

use qual_lattice::{QualSet, QualSpace};

use crate::constraint::Constraint;
use crate::error::{SolveError, SolveFailure, Violation};
use crate::simplify::Collapser;
use crate::term::{QVar, Qual};

/// The result of solving a satisfiable constraint set.
///
/// Holds the pointwise **least** and **greatest** satisfying assignments.
/// Any variable not mentioned by any constraint is unconstrained: its
/// least value is `⊥` and its greatest is `⊤`.
#[derive(Debug, Clone)]
pub struct Solution {
    least: Vec<QualSet>,
    greatest: Vec<QualSet>,
}

impl Solution {
    /// The least satisfying value of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was issued after the solve (index out of range).
    #[must_use]
    pub fn least(&self, v: QVar) -> QualSet {
        self.least[v.index()]
    }

    /// The greatest satisfying value of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was issued after the solve (index out of range).
    #[must_use]
    pub fn greatest(&self, v: QVar) -> QualSet {
        self.greatest[v.index()]
    }

    /// Evaluates a term under the least solution.
    #[must_use]
    pub fn eval_least(&self, q: Qual) -> QualSet {
        match q {
            Qual::Var(v) => self.least(v),
            Qual::Const(c) => c,
        }
    }

    /// Evaluates a term under the greatest solution.
    #[must_use]
    pub fn eval_greatest(&self, q: Qual) -> QualSet {
        match q {
            Qual::Var(v) => self.greatest(v),
            Qual::Const(c) => c,
        }
    }

    /// Whether `v` is completely unconstrained (`⊥` below, `⊤` above).
    #[must_use]
    pub fn is_unconstrained(&self, space: &QualSpace, v: QVar) -> bool {
        self.least(v) == space.bottom() && self.greatest(v) == space.top()
    }

    /// Number of variables covered.
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.least.len()
    }

    /// Builds a *claimed* solution from raw least/greatest tables, one
    /// entry per variable in index order — e.g. a deserialized witness,
    /// or a deliberately corrupted one — for
    /// [`crate::verify::verify_solution`] to check. Nothing is validated
    /// here; that is the checker's job.
    ///
    /// # Panics
    ///
    /// Panics if the two tables disagree on the variable count.
    #[must_use]
    pub fn from_parts(least: Vec<QualSet>, greatest: Vec<QualSet>) -> Solution {
        assert_eq!(
            least.len(),
            greatest.len(),
            "least/greatest tables must cover the same variables"
        );
        Solution { least, greatest }
    }
}

/// Solves `constraints` over `space` for `var_count` variables on the
/// dense hot path (see [`crate::dense`]). `pre` carries equivalence
/// classes discovered online during constraint generation.
pub(crate) fn solve(
    space: &QualSpace,
    var_count: usize,
    constraints: &[Constraint],
    pre: Option<&Collapser>,
) -> Result<Solution, SolveError> {
    match solve_budgeted(space, var_count, constraints, u64::MAX, pre) {
        Ok(s) => Ok(s),
        Err(SolveFailure::Unsat(e)) => Err(e),
        Err(SolveFailure::BudgetExceeded { .. }) => {
            unreachable!("u64::MAX budget cannot be exhausted")
        }
        Err(SolveFailure::Cancelled { .. }) => {
            unreachable!("unbudgeted solves are uncancellable")
        }
    }
}

/// Like [`solve`], but gives up with [`SolveFailure::BudgetExceeded`]
/// once `max_steps` units of work are spent, turning pathological
/// constraint graphs into a structured diagnostic instead of an
/// unbounded stall.
pub(crate) fn solve_budgeted(
    space: &QualSpace,
    var_count: usize,
    constraints: &[Constraint],
    max_steps: u64,
    pre: Option<&Collapser>,
) -> Result<Solution, SolveFailure> {
    crate::dense::solve_budgeted(space, var_count, constraints, max_steps, pre)
}

/// The retained reference solver: the original sparse worklist pass,
/// kept verbatim as the oracle the dense path is differentially tested
/// against (`tests/dense_differential.rs`) and as an executable spec of
/// the observable behavior — solution tables, violation order, budget
/// and cancellation semantics.
pub(crate) fn solve_budgeted_reference(
    space: &QualSpace,
    var_count: usize,
    constraints: &[Constraint],
    max_steps: u64,
) -> Result<Solution, SolveFailure> {
    let _span = qual_obs::span("solve-propagate");
    qual_obs::peak("solve.vars", var_count as u64);
    qual_obs::peak("solve.coords", space.len() as u64);
    // Adjacency with per-edge masks: fwd[v] = (w, m) pairs with
    // `v ⊓ m ⊑ w ⊔ ¬m`; bwd is the reverse.
    let top = space.top().bits();
    let mut fwd: Vec<Vec<(u32, u64)>> = vec![Vec::new(); var_count];
    let mut bwd: Vec<Vec<(u32, u64)>> = vec![Vec::new(); var_count];
    let mut least = vec![space.bottom(); var_count];
    let mut greatest = vec![space.top(); var_count];
    let mut violations = Vec::new();

    for c in constraints {
        let m = c.mask & top;
        match (c.lhs, c.rhs) {
            (Qual::Const(l), Qual::Const(r)) => {
                if l.bits() & !r.bits() & m != 0 {
                    violations.push(Violation {
                        constraint: *c,
                        lower: l,
                        upper: r,
                    });
                }
            }
            (Qual::Const(l), Qual::Var(v)) => {
                let lv = &mut least[v.index()];
                *lv = QualSet::from_bits(lv.bits() | (l.bits() & m));
            }
            (Qual::Var(v), Qual::Const(r)) => {
                let gv = &mut greatest[v.index()];
                *gv = QualSet::from_bits(gv.bits() & (r.bits() | (top & !m)));
            }
            (Qual::Var(v), Qual::Var(w)) => {
                // `v ⊓ m ⊑ v ⊔ ¬m` always holds, so self-loops are inert.
                if v != w {
                    fwd[v.index()].push((w.0, m));
                    bwd[w.index()].push((v.0, m));
                }
            }
        }
    }

    // Least solution: propagate lower bounds forward to fixpoint; then
    // greatest by propagating upper bounds backward. Both passes share
    // one step budget. Budgeted solves are also *cancellable*: they
    // poll the calling thread's cooperative deadline
    // (`qual_faultpoint::cancel`) once per step batch, so a worker
    // whose wall clock expired mid-solve unwinds with a structured
    // failure instead of finishing a fixpoint nobody will use.
    // Unbudgeted (`u64::MAX`) solves never poll — they come from
    // deadline-free contexts and must stay infallible.
    let cancellable = max_steps != u64::MAX;
    let mut budget = max_steps;
    for (adj, val, dir) in [
        (&fwd, &mut least, PropagateDir::JoinForward),
        (&bwd, &mut greatest, PropagateDir::MeetBackward),
    ] {
        match propagate(top, adj, val, dir, &mut budget, cancellable) {
            Propagate::Converged => {}
            Propagate::OutOfBudget => {
                qual_obs::count("solve.steps", max_steps - budget);
                return Err(SolveFailure::BudgetExceeded {
                    steps: max_steps - budget,
                    limit: max_steps,
                });
            }
            Propagate::Cancelled => {
                qual_obs::count("solve.steps", max_steps - budget);
                return Err(SolveFailure::Cancelled {
                    steps: max_steps - budget,
                });
            }
        }
    }
    qual_obs::count("solve.steps", max_steps - budget);

    // Satisfiability: the least solution satisfies every `L ⊑ κ` and
    // `κ ⊑ κ′` constraint by construction, so the system is solvable iff
    // the least solution also respects every `κ ⊑ L` upper bound.
    // Checking exactly those constraints reports each conflict once, at
    // the constraint whose bound is exceeded.
    for c in constraints {
        if let (Qual::Var(v), Qual::Const(r)) = (c.lhs, c.rhs) {
            let lo = least[v.index()];
            if lo.bits() & !r.bits() & c.mask & top != 0 {
                violations.push(Violation {
                    constraint: *c,
                    lower: lo,
                    upper: r,
                });
            }
        }
    }

    if violations.is_empty() {
        Ok(Solution { least, greatest })
    } else {
        Err(SolveFailure::Unsat(SolveError { violations }))
    }
}

#[derive(Clone, Copy)]
enum PropagateDir {
    JoinForward,
    MeetBackward,
}

/// How one propagation pass ended.
enum Propagate {
    Converged,
    OutOfBudget,
    Cancelled,
}

/// Worklist fixpoint: for each edge `v -> (w, m)` in `adj`, enforce
/// `val[w] ⊒ val[v] ⊓ m` (join mode) or `val[w] ⊑ val[v] ⊔ ¬m` reading
/// `adj` as the reversed graph (meet mode). Each variable re-enters the
/// worklist only when its value strictly changes; the lattice has height
/// ≤ 64, so the total work is `O(height · edges)`.
///
/// Every edge relaxation spends one unit of `budget`; the pass ends
/// `OutOfBudget` (state unreliable) if the budget runs out, and
/// `Cancelled` if `cancellable` and the thread's cooperative deadline
/// fires (polled once per `CANCEL_BATCH` relaxations, so the poll cost
/// is amortized to nothing on the hot path).
fn propagate(
    top: u64,
    adj: &[Vec<(u32, u64)>],
    val: &mut [QualSet],
    dir: PropagateDir,
    budget: &mut u64,
    cancellable: bool,
) -> Propagate {
    const CANCEL_BATCH: u64 = 1024;
    let mut on_list = vec![true; val.len()];
    let mut work: Vec<u32> = (0..val.len() as u32).collect();
    let mut until_poll = CANCEL_BATCH;
    while let Some(v) = work.pop() {
        on_list[v as usize] = false;
        let from = val[v as usize].bits();
        for &(w, m) in &adj[v as usize] {
            if *budget == 0 {
                return Propagate::OutOfBudget;
            }
            *budget -= 1;
            if cancellable {
                until_poll -= 1;
                if until_poll == 0 {
                    until_poll = CANCEL_BATCH;
                    if qual_faultpoint::cancel::expired() {
                        return Propagate::Cancelled;
                    }
                }
            }
            let cur = val[w as usize].bits();
            let next = match dir {
                PropagateDir::JoinForward => cur | (from & m),
                PropagateDir::MeetBackward => cur & (from | (top & !m)),
            };
            if next != cur {
                val[w as usize] = QualSet::from_bits(next);
                if !on_list[w as usize] {
                    on_list[w as usize] = true;
                    work.push(w);
                }
            }
        }
    }
    Propagate::Converged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintSet;
    use crate::term::{Provenance, VarSupply};
    use qual_lattice::QualSpace;

    fn setup() -> (QualSpace, VarSupply, ConstraintSet) {
        (QualSpace::figure2(), VarSupply::new(), ConstraintSet::new())
    }

    #[test]
    fn unconstrained_vars_span_whole_lattice() {
        let (space, mut vs, cs) = setup();
        let a = vs.fresh();
        let sol = cs.solve(&space, &vs).unwrap();
        assert_eq!(sol.least(a), space.bottom());
        assert_eq!(sol.greatest(a), space.top());
        assert!(sol.is_unconstrained(&space, a));
    }

    #[test]
    fn lower_bounds_flow_forward() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let (a, b, c) = (vs.fresh(), vs.fresh(), vs.fresh());
        cs.add(konst, a);
        cs.add(a, b);
        cs.add(b, c);
        let sol = cs.solve(&space, &vs).unwrap();
        for v in [a, b, c] {
            assert!(space.le(konst, sol.least(v)));
        }
        // Nothing flows backward.
        assert_eq!(sol.greatest(a), space.top());
    }

    #[test]
    fn upper_bounds_flow_backward() {
        let (space, mut vs, mut cs) = setup();
        let nc = space.not_q(space.id("const").unwrap());
        let (a, b) = (vs.fresh(), vs.fresh());
        cs.add(a, b);
        cs.add(b, nc);
        let sol = cs.solve(&space, &vs).unwrap();
        assert!(space.le(sol.greatest(a), nc));
        assert!(space.le(sol.greatest(b), nc));
    }

    #[test]
    fn conflict_is_reported_with_provenance() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let nc = space.not_q(space.id("const").unwrap());
        let a = vs.fresh();
        cs.add_with(konst, a, Provenance::synthetic("annotation"));
        cs.add_with(a, nc, Provenance::at(5, 9, "assignment"));
        let err = cs.solve(&space, &vs).unwrap_err();
        assert_eq!(err.violations.len(), 1);
        let v = &err.violations[0];
        assert_eq!(v.constraint.origin.what, "assignment");
        let msg = err.to_string();
        assert!(msg.contains("assignment"), "message was: {msg}");
    }

    #[test]
    fn const_const_violation_detected() {
        let (space, _vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let none = space.none();
        cs.add(konst, none); // const ⊑ ∅ is false
        let err = cs.solve_with_count(&space, 0).unwrap_err();
        assert_eq!(err.violations.len(), 1);
        cs = ConstraintSet::new();
        cs.add(none, konst); // ∅ ⊑ const is true
        assert!(cs.solve_with_count(&space, 0).is_ok());
    }

    #[test]
    fn cycles_converge() {
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let (a, b, c) = (vs.fresh(), vs.fresh(), vs.fresh());
        cs.add(a, b);
        cs.add(b, c);
        cs.add(c, a);
        cs.add(konst, b);
        let sol = cs.solve(&space, &vs).unwrap();
        for v in [a, b, c] {
            assert_eq!(sol.least(v), konst);
        }
    }

    #[test]
    fn negative_qualifier_flows() {
        // nonzero is negative: ⊥ contains it. An `x` required nonzero on
        // use (x ⊑ ¬nonzero-complement ... ) — model the paper's line 3/4
        // example shape: value 0 has qualifier set *without* nonzero, and
        // asserting nonzero on it must fail.
        let (space, mut vs, mut cs) = setup();
        let nz = space.id("nonzero").unwrap();
        let zero_quals = space.none(); // plain 0 literal: nonzero absent
        let x = vs.fresh();
        cs.add(zero_quals, x); // value flows into x
        // assertion x|nonzero requires x ⊑ (element with nonzero present)
        let req = space.with_present(space.top(), nz);
        cs.add(x, req);
        let err = cs.solve(&space, &vs).unwrap_err();
        assert_eq!(err.violations.len(), 1);
    }

    #[test]
    fn eval_helpers() {
        let (space, mut vs, mut cs) = setup();
        let a = vs.fresh();
        let konst = space.parse_set("const").unwrap();
        cs.add(konst, a);
        let sol = cs.solve(&space, &vs).unwrap();
        assert_eq!(sol.eval_least(Qual::Var(a)), konst);
        assert_eq!(sol.eval_least(Qual::Const(space.none())), space.none());
        assert_eq!(sol.eval_greatest(Qual::Var(a)), space.top());
        assert_eq!(sol.var_count(), 1);
    }

    #[test]
    fn self_loop_is_harmless() {
        let (space, mut vs, mut cs) = setup();
        let a = vs.fresh();
        cs.add(a, a);
        let sol = cs.solve(&space, &vs).unwrap();
        assert!(sol.is_unconstrained(&space, a));
    }

    #[test]
    fn masked_constraint_relates_only_masked_coordinates() {
        // v carries const+dynamic; edge to w masked to const only.
        let (space, mut vs, mut cs) = setup();
        let cd = space.parse_set("const dynamic").unwrap();
        let c_id = space.id("const").unwrap();
        let (v, w) = (vs.fresh(), vs.fresh());
        cs.add(cd, v);
        cs.add_masked(v, w, &[c_id], Provenance::synthetic("wf"));
        let sol = cs.solve(&space, &vs).unwrap();
        // Only the const coordinate moved; w otherwise stays at ⊥.
        let expected = space.with_present(space.bottom(), c_id);
        assert_eq!(sol.least(w), expected, "only const flowed through the mask");
        assert!(!sol.least(w).has(&space, space.id("dynamic").unwrap()));
    }

    #[test]
    fn masked_upper_bound_leaves_other_coordinates_free() {
        // v ⊑ ∅ masked to const: forbids const but not dynamic.
        let (space, mut vs, mut cs) = setup();
        let c_id = space.id("const").unwrap();
        let v = vs.fresh();
        cs.add_masked(v, space.bottom(), &[c_id], Provenance::synthetic("assign"));
        let sol = cs.solve(&space, &vs).unwrap();
        assert!(!sol.greatest(v).has(&space, c_id));
        assert!(sol.greatest(v).has(&space, space.id("dynamic").unwrap()));
    }

    #[test]
    fn masked_violation_only_on_masked_coordinate() {
        let (space, mut vs, mut cs) = setup();
        let c_id = space.id("const").unwrap();
        let d_id = space.id("dynamic").unwrap();
        let v = vs.fresh();
        // dynamic flows in; upper bound ∅ masked to const: fine.
        cs.add(space.parse_set("dynamic").unwrap(), v);
        cs.add_masked(v, space.bottom(), &[c_id], Provenance::synthetic("a"));
        assert!(cs.solve(&space, &vs).is_ok());
        // Now bound the dynamic coordinate too: violation.
        cs.add_masked(v, space.bottom(), &[d_id], Provenance::synthetic("b"));
        let err = cs.solve(&space, &vs).unwrap_err();
        assert_eq!(err.violations.len(), 1);
        assert_eq!(err.violations[0].constraint.origin.what, "b");
    }

    #[test]
    fn diamond_join() {
        // const ⊑ a, dynamic ⊑ b, a ⊑ c, b ⊑ c ⇒ least(c) = const ⊔ dynamic.
        let (space, mut vs, mut cs) = setup();
        let konst = space.parse_set("const").unwrap();
        let dynamic = space.parse_set("dynamic").unwrap();
        let (a, b, c) = (vs.fresh(), vs.fresh(), vs.fresh());
        cs.add(konst, a);
        cs.add(dynamic, b);
        cs.add(a, c);
        cs.add(b, c);
        let sol = cs.solve(&space, &vs).unwrap();
        assert_eq!(sol.least(c), space.join(konst, dynamic));
    }
}
