//! Atomic qualifier-constraint solving for *A Theory of Type Qualifiers*
//! (PLDI 1999), §3.1–§3.2.
//!
//! After structural decomposition of subtype constraints (done by the
//! client type systems in `qual-lambda` and `qual-constinfer`), what
//! remains are *atomic* constraints over the qualifier lattice:
//!
//! ```text
//! κ ⊑ L      (variable bounded above by a lattice constant)
//! L ⊑ κ      (variable bounded below)
//! κ₁ ⊑ κ₂    (variable flows into variable)
//! L₁ ⊑ L₂    (immediately checkable)
//! ```
//!
//! This is an atomic subtyping system solvable in linear time for a fixed
//! set of qualifiers (Henglein–Rehof 1997); the paper's prototype used the
//! generic BANE engine and predicted "substantial speedups would be
//! achieved with a framework specialized to the qualifier lattice" — this
//! crate is that specialized engine.
//!
//! The solver computes both the **least** and the **greatest** solution of
//! a satisfiable system (the solution set of an atomic system is closed
//! under pointwise ⊔ and ⊓, so both exist). Together they classify each
//! variable the way §4.4 of the paper requires: a qualifier *must* be
//! present if it is present in the least solution, *cannot* be present if
//! absent from the greatest solution, and *may be either* otherwise.
//!
//! # Example
//!
//! ```
//! use qual_lattice::QualSpace;
//! use qual_solve::{ConstraintSet, Qual, VarSupply};
//!
//! let space = QualSpace::const_only();
//! let konst = space.id("const").unwrap();
//! let mut vars = VarSupply::new();
//! let (a, b) = (vars.fresh(), vars.fresh());
//!
//! let mut cs = ConstraintSet::new();
//! cs.add(Qual::Const(space.just(konst)), Qual::Var(a)); // const ⊑ a
//! cs.add(Qual::Var(a), Qual::Var(b));                   // a ⊑ b
//!
//! let sol = cs.solve(&space, &vars)?;
//! assert!(sol.least(b).has(&space, konst)); // const flowed into b
//! # Ok::<(), qual_solve::SolveError>(())
//! ```

mod constraint;
mod dense;
pub mod diag;
pub mod dot;
mod error;
pub mod explain;
mod scheme;
pub mod simplify;
mod solver;
mod term;
pub mod verify;
pub mod wire;

pub use constraint::{Constraint, ConstraintSet};
pub use diag::{sort_diagnostics, Diagnostic, Phase, Severity};
pub use error::{SolveError, SolveFailure, Violation};
pub use explain::{explain, Explanation};
pub use scheme::Scheme;
pub use simplify::{compact, Collapser, Compacted};
pub use solver::Solution;
pub use term::{Provenance, QVar, Qual, VarSupply};
pub use verify::{verify_explanation, verify_solution, Assignment, CertificateError};
