//! Constraint simplification: eliminating purely-internal variables from
//! a captured constraint set.
//!
//! §6 of the paper: "in practice these constraint systems can be large
//! and difficult to interpret. Simplifying these constrained types for
//! presentation is an open research problem." This module implements the
//! workhorse sound simplification: Gaussian-style elimination of
//! variables that are not part of a scheme's interface. Each internal
//! variable `v` is removed by composing every in-edge `a ⊑ₘ₁ v` with
//! every out-edge `v ⊑ₘ₂ b` into `a ⊑ₘ₁∩ₘ₂ b`; for atomic constraints
//! the least (and greatest) solutions restricted to the remaining
//! variables are preserved exactly, because flows through `v` are the
//! joins over paths and edge composition contracts paths.
//!
//! Elimination can blow up quadratically per variable, so variables whose
//! in×out degree product exceeds a budget are kept (soundness never
//! depends on eliminating anything).

use std::collections::HashSet;

use crate::constraint::Constraint;
use crate::term::{QVar, Qual};

/// Online cycle collapse over the full-mask subgraph, fed one constraint
/// at a time *during generation* (the HR97-style "simplify while you
/// build" discipline).
///
/// The collapser watches for textual two-cycles — `v ⊑ w` followed by
/// `w ⊑ v`, both with the full mask, which is exactly what
/// [`crate::ConstraintSet::add_eq`] emits — and unions the endpoints in
/// an incremental union-find. The dense solver seeds its own union-find
/// from these classes, so equalities discovered at generation time never
/// reach the propagation loop as edges. Longer cycles (and masked cycles
/// that happen to cover the whole space) are still found by the solver's
/// SCC pass; the online collapser is a fast path, never a soundness
/// dependency.
///
/// Collapsing a full-mask cycle is *exact*: every member of the cycle is
/// forced to the same value in both the least and the greatest solution,
/// so solving the quotient graph and copying the representative's value
/// back to each member reproduces the original solution bit for bit.
///
/// Generation is transactional — engines roll failed work back with
/// [`crate::ConstraintSet::truncate`] — so every observation is logged
/// against its constraint index and [`Collapser::rollback`] undoes
/// unions and edge records past the mark. To keep undo exact, the
/// union-find unions by rank and never path-compresses.
#[derive(Debug, Clone, Default)]
pub struct Collapser {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Full-mask var→var edges currently in the set.
    edges: HashSet<(u32, u32)>,
    /// Edge insertions in constraint order: `(constraint index, v, w)`.
    edge_log: Vec<(usize, u32, u32)>,
    /// Unions in constraint order:
    /// `(constraint index, child root, parent root, rank bumped)`.
    union_log: Vec<(usize, u32, u32, bool)>,
}

impl Collapser {
    /// An empty collapser.
    #[must_use]
    pub fn new() -> Collapser {
        Collapser::default()
    }

    fn ensure(&mut self, v: u32) {
        let need = v as usize + 1;
        if self.parent.len() < need {
            let from = self.parent.len() as u32;
            self.parent.extend(from..need as u32);
            self.rank.resize(need, 0);
        }
    }

    /// The representative of `v`'s equivalence class (itself if never
    /// merged). Read-only: no path compression, so rollback stays exact.
    #[must_use]
    pub fn class_of(&self, v: u32) -> u32 {
        let mut v = v;
        while (v as usize) < self.parent.len() && self.parent[v as usize] != v {
            v = self.parent[v as usize];
        }
        v
    }

    /// Number of variables folded into another representative.
    #[must_use]
    pub fn merged(&self) -> usize {
        self.union_log.len()
    }

    /// Feeds the constraint at index `idx`. Only full-mask var→var
    /// constraints are interesting; everything else is ignored.
    pub fn observe(&mut self, idx: usize, c: &Constraint) {
        let (Qual::Var(v), Qual::Var(w)) = (c.lhs, c.rhs) else {
            return;
        };
        if c.mask != u64::MAX || v == w {
            return;
        }
        let (v, w) = (v.index() as u32, w.index() as u32);
        self.ensure(v.max(w));
        if self.edges.contains(&(w, v)) {
            self.union(idx, v, w);
        }
        if self.edges.insert((v, w)) {
            self.edge_log.push((idx, v, w));
        }
    }

    fn union(&mut self, idx: usize, v: u32, w: u32) {
        let (a, b) = (self.class_of(v), self.class_of(w));
        if a == b {
            return;
        }
        // Union by rank; the lower-rank root becomes the child. Ties
        // attach `b` under `a` and bump `a`'s rank (logged for undo).
        let (child, root, bumped) = match self.rank[a as usize].cmp(&self.rank[b as usize]) {
            std::cmp::Ordering::Less => (a, b, false),
            std::cmp::Ordering::Greater => (b, a, false),
            std::cmp::Ordering::Equal => {
                self.rank[a as usize] += 1;
                (b, a, true)
            }
        };
        self.parent[child as usize] = root;
        self.union_log.push((idx, child, root, bumped));
    }

    /// Undoes every observation made at constraint index `len` or later,
    /// mirroring [`crate::ConstraintSet::truncate`]`(len)`.
    pub fn rollback(&mut self, len: usize) {
        while let Some(&(idx, child, root, bumped)) = self.union_log.last() {
            if idx < len {
                break;
            }
            self.parent[child as usize] = child;
            if bumped {
                self.rank[root as usize] -= 1;
            }
            self.union_log.pop();
        }
        while let Some(&(idx, v, w)) = self.edge_log.last() {
            if idx < len {
                break;
            }
            self.edges.remove(&(v, w));
            self.edge_log.pop();
        }
    }
}

/// The result of compaction.
#[derive(Debug)]
pub struct Compacted {
    /// The equivalent constraints over interface (and kept) variables.
    pub constraints: Vec<Constraint>,
    /// Internal variables that were kept because eliminating them would
    /// have exceeded the budget.
    pub kept: Vec<QVar>,
}

/// Eliminates every variable in `internal` (except those exceeding
/// `degree_budget`) from `constraints`, preserving all consequences
/// among the remaining variables and constants.
#[must_use]
pub fn compact(
    constraints: &[Constraint],
    internal: &HashSet<QVar>,
    degree_budget: usize,
) -> Compacted {
    // Dedup as we go: constraint identity ignores provenance (we keep
    // the first provenance seen for each logical constraint).
    let mut edges: HashSet<(Qual, Qual, u64)> = HashSet::new();
    let mut all: Vec<Constraint> = Vec::new();
    let mut push = |all: &mut Vec<Constraint>, c: Constraint| {
        if c.lhs == c.rhs {
            return; // reflexive, inert
        }
        if edges.insert((c.lhs, c.rhs, c.mask)) {
            all.push(c);
        }
    };
    let mut mentioned: HashSet<QVar> = HashSet::new();
    for c in constraints {
        push(&mut all, *c);
        for q in [c.lhs, c.rhs] {
            if let Qual::Var(v) = q {
                mentioned.insert(v);
            }
        }
    }

    // Only variables that actually occur can need elimination; windows
    // are usually much larger than the constraint set's support.
    let todo: Vec<QVar> = internal
        .iter()
        .copied()
        .filter(|v| mentioned.contains(v))
        .collect();

    let mut kept = Vec::new();
    for v in todo {
        // Partition current constraints into in-edges, out-edges, rest.
        let mut ins = Vec::new();
        let mut outs = Vec::new();
        let mut rest = Vec::new();
        for c in all.drain(..) {
            let is_in = c.rhs == Qual::Var(v);
            let is_out = c.lhs == Qual::Var(v);
            match (is_in, is_out) {
                (true, true) => {} // self loop: inert
                (true, false) => ins.push(c),
                (false, true) => outs.push(c),
                (false, false) => rest.push(c),
            }
        }
        if ins.len().saturating_mul(outs.len()) > degree_budget {
            // Too connected: keep v and its constraints. They were
            // deduplicated when first added (and drained uniquely), so
            // they go straight back without consulting the dedup set.
            kept.push(v);
            all = rest;
            all.extend(ins);
            all.extend(outs);
            continue;
        }
        all = rest;
        // Rebuild the dedup set lazily: compose pairs.
        for i in &ins {
            for o in &outs {
                let mask = i.mask & o.mask;
                if mask == 0 {
                    continue; // relates no coordinate
                }
                push(
                    &mut all,
                    Constraint {
                        lhs: i.lhs,
                        rhs: o.rhs,
                        mask,
                        origin: i.origin,
                    },
                );
            }
        }
    }

    Compacted {
        constraints: all,
        kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintSet;
    use crate::term::{Provenance, VarSupply};
    use qual_lattice::QualSpace;

    fn set_of(cs: Vec<Constraint>) -> ConstraintSet {
        cs.into_iter().collect()
    }

    #[test]
    fn chain_through_internal_contracts() {
        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let (a, x, b) = (vs.fresh(), vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add(a, x);
        cs.add(x, b);
        let internal: HashSet<QVar> = [x].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert!(out.kept.is_empty());
        assert_eq!(out.constraints.len(), 1);
        assert_eq!(out.constraints[0].lhs, Qual::Var(a));
        assert_eq!(out.constraints[0].rhs, Qual::Var(b));

        // Solutions at the interface agree.
        let konst = space.top();
        let mut full = cs.clone();
        full.add(Qual::Const(konst), a);
        let mut small = set_of(out.constraints.clone());
        small.add(Qual::Const(konst), a);
        let s1 = full.solve(&space, &vs).unwrap();
        let s2 = small.solve(&space, &vs).unwrap();
        assert_eq!(s1.least(b), s2.least(b));
        assert_eq!(s1.greatest(a), s2.greatest(a));
    }

    #[test]
    fn masks_compose_by_intersection() {
        let space = QualSpace::figure2();
        let c_id = space.id("const").unwrap();
        let d_id = space.id("dynamic").unwrap();
        let mut vs = VarSupply::new();
        let (a, x, b) = (vs.fresh(), vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add_masked(a, x, &[c_id, d_id], Provenance::synthetic("t"));
        cs.add_masked(x, b, &[c_id], Provenance::synthetic("t"));
        let internal: HashSet<QVar> = [x].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert_eq!(out.constraints.len(), 1);
        assert_eq!(out.constraints[0].mask, 1u64 << c_id.index());
    }

    #[test]
    fn disjoint_masks_drop_the_edge() {
        let space = QualSpace::figure2();
        let c_id = space.id("const").unwrap();
        let d_id = space.id("dynamic").unwrap();
        let mut vs = VarSupply::new();
        let (a, x, b) = (vs.fresh(), vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add_masked(a, x, &[c_id], Provenance::synthetic("t"));
        cs.add_masked(x, b, &[d_id], Provenance::synthetic("t"));
        let internal: HashSet<QVar> = [x].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert!(out.constraints.is_empty(), "{:?}", out.constraints);
    }

    #[test]
    fn degree_budget_keeps_hubs() {
        let mut vs = VarSupply::new();
        let hub = vs.fresh();
        let mut cs = ConstraintSet::new();
        for _ in 0..20 {
            let v = vs.fresh();
            cs.add(v, hub);
            let w = vs.fresh();
            cs.add(hub, w);
        }
        let internal: HashSet<QVar> = [hub].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 10);
        assert_eq!(out.kept, vec![hub]);
        assert_eq!(out.constraints.len(), 40);
    }

    #[test]
    fn diamond_dedupes() {
        let mut vs = VarSupply::new();
        let (a, x, y, b) = (vs.fresh(), vs.fresh(), vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add(a, x);
        cs.add(a, y);
        cs.add(x, b);
        cs.add(y, b);
        let internal: HashSet<QVar> = [x, y].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert_eq!(out.constraints.len(), 1, "{:?}", out.constraints);
    }

    #[test]
    fn constants_survive_composition() {
        let space = QualSpace::const_only();
        let konst = space.top();
        let mut vs = VarSupply::new();
        let (x, b) = (vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add(Qual::Const(konst), x);
        cs.add(x, b);
        let internal: HashSet<QVar> = [x].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert_eq!(out.constraints.len(), 1);
        assert_eq!(out.constraints[0].lhs, Qual::Const(konst));
        assert_eq!(out.constraints[0].rhs, Qual::Var(b));
    }
}
