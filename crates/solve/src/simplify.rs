//! Constraint simplification: eliminating purely-internal variables from
//! a captured constraint set.
//!
//! §6 of the paper: "in practice these constraint systems can be large
//! and difficult to interpret. Simplifying these constrained types for
//! presentation is an open research problem." This module implements the
//! workhorse sound simplification: Gaussian-style elimination of
//! variables that are not part of a scheme's interface. Each internal
//! variable `v` is removed by composing every in-edge `a ⊑ₘ₁ v` with
//! every out-edge `v ⊑ₘ₂ b` into `a ⊑ₘ₁∩ₘ₂ b`; for atomic constraints
//! the least (and greatest) solutions restricted to the remaining
//! variables are preserved exactly, because flows through `v` are the
//! joins over paths and edge composition contracts paths.
//!
//! Elimination can blow up quadratically per variable, so variables whose
//! in×out degree product exceeds a budget are kept (soundness never
//! depends on eliminating anything).

use std::collections::HashSet;

use crate::constraint::Constraint;
use crate::term::{QVar, Qual};

/// The result of compaction.
#[derive(Debug)]
pub struct Compacted {
    /// The equivalent constraints over interface (and kept) variables.
    pub constraints: Vec<Constraint>,
    /// Internal variables that were kept because eliminating them would
    /// have exceeded the budget.
    pub kept: Vec<QVar>,
}

/// Eliminates every variable in `internal` (except those exceeding
/// `degree_budget`) from `constraints`, preserving all consequences
/// among the remaining variables and constants.
#[must_use]
pub fn compact(
    constraints: &[Constraint],
    internal: &HashSet<QVar>,
    degree_budget: usize,
) -> Compacted {
    // Dedup as we go: constraint identity ignores provenance (we keep
    // the first provenance seen for each logical constraint).
    let mut edges: HashSet<(Qual, Qual, u64)> = HashSet::new();
    let mut all: Vec<Constraint> = Vec::new();
    let mut push = |all: &mut Vec<Constraint>, c: Constraint| {
        if c.lhs == c.rhs {
            return; // reflexive, inert
        }
        if edges.insert((c.lhs, c.rhs, c.mask)) {
            all.push(c);
        }
    };
    let mut mentioned: HashSet<QVar> = HashSet::new();
    for c in constraints {
        push(&mut all, *c);
        for q in [c.lhs, c.rhs] {
            if let Qual::Var(v) = q {
                mentioned.insert(v);
            }
        }
    }

    // Only variables that actually occur can need elimination; windows
    // are usually much larger than the constraint set's support.
    let todo: Vec<QVar> = internal
        .iter()
        .copied()
        .filter(|v| mentioned.contains(v))
        .collect();

    let mut kept = Vec::new();
    for v in todo {
        // Partition current constraints into in-edges, out-edges, rest.
        let mut ins = Vec::new();
        let mut outs = Vec::new();
        let mut rest = Vec::new();
        for c in all.drain(..) {
            let is_in = c.rhs == Qual::Var(v);
            let is_out = c.lhs == Qual::Var(v);
            match (is_in, is_out) {
                (true, true) => {} // self loop: inert
                (true, false) => ins.push(c),
                (false, true) => outs.push(c),
                (false, false) => rest.push(c),
            }
        }
        if ins.len().saturating_mul(outs.len()) > degree_budget {
            // Too connected: keep v and its constraints. They were
            // deduplicated when first added (and drained uniquely), so
            // they go straight back without consulting the dedup set.
            kept.push(v);
            all = rest;
            all.extend(ins);
            all.extend(outs);
            continue;
        }
        all = rest;
        // Rebuild the dedup set lazily: compose pairs.
        for i in &ins {
            for o in &outs {
                let mask = i.mask & o.mask;
                if mask == 0 {
                    continue; // relates no coordinate
                }
                push(
                    &mut all,
                    Constraint {
                        lhs: i.lhs,
                        rhs: o.rhs,
                        mask,
                        origin: i.origin,
                    },
                );
            }
        }
    }

    Compacted {
        constraints: all,
        kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintSet;
    use crate::term::{Provenance, VarSupply};
    use qual_lattice::QualSpace;

    fn set_of(cs: Vec<Constraint>) -> ConstraintSet {
        cs.into_iter().collect()
    }

    #[test]
    fn chain_through_internal_contracts() {
        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let (a, x, b) = (vs.fresh(), vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add(a, x);
        cs.add(x, b);
        let internal: HashSet<QVar> = [x].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert!(out.kept.is_empty());
        assert_eq!(out.constraints.len(), 1);
        assert_eq!(out.constraints[0].lhs, Qual::Var(a));
        assert_eq!(out.constraints[0].rhs, Qual::Var(b));

        // Solutions at the interface agree.
        let konst = space.top();
        let mut full = cs.clone();
        full.add(Qual::Const(konst), a);
        let mut small = set_of(out.constraints.clone());
        small.add(Qual::Const(konst), a);
        let s1 = full.solve(&space, &vs).unwrap();
        let s2 = small.solve(&space, &vs).unwrap();
        assert_eq!(s1.least(b), s2.least(b));
        assert_eq!(s1.greatest(a), s2.greatest(a));
    }

    #[test]
    fn masks_compose_by_intersection() {
        let space = QualSpace::figure2();
        let c_id = space.id("const").unwrap();
        let d_id = space.id("dynamic").unwrap();
        let mut vs = VarSupply::new();
        let (a, x, b) = (vs.fresh(), vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add_masked(a, x, &[c_id, d_id], Provenance::synthetic("t"));
        cs.add_masked(x, b, &[c_id], Provenance::synthetic("t"));
        let internal: HashSet<QVar> = [x].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert_eq!(out.constraints.len(), 1);
        assert_eq!(out.constraints[0].mask, 1u64 << c_id.index());
    }

    #[test]
    fn disjoint_masks_drop_the_edge() {
        let space = QualSpace::figure2();
        let c_id = space.id("const").unwrap();
        let d_id = space.id("dynamic").unwrap();
        let mut vs = VarSupply::new();
        let (a, x, b) = (vs.fresh(), vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add_masked(a, x, &[c_id], Provenance::synthetic("t"));
        cs.add_masked(x, b, &[d_id], Provenance::synthetic("t"));
        let internal: HashSet<QVar> = [x].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert!(out.constraints.is_empty(), "{:?}", out.constraints);
    }

    #[test]
    fn degree_budget_keeps_hubs() {
        let mut vs = VarSupply::new();
        let hub = vs.fresh();
        let mut cs = ConstraintSet::new();
        for _ in 0..20 {
            let v = vs.fresh();
            cs.add(v, hub);
            let w = vs.fresh();
            cs.add(hub, w);
        }
        let internal: HashSet<QVar> = [hub].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 10);
        assert_eq!(out.kept, vec![hub]);
        assert_eq!(out.constraints.len(), 40);
    }

    #[test]
    fn diamond_dedupes() {
        let mut vs = VarSupply::new();
        let (a, x, y, b) = (vs.fresh(), vs.fresh(), vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add(a, x);
        cs.add(a, y);
        cs.add(x, b);
        cs.add(y, b);
        let internal: HashSet<QVar> = [x, y].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert_eq!(out.constraints.len(), 1, "{:?}", out.constraints);
    }

    #[test]
    fn constants_survive_composition() {
        let space = QualSpace::const_only();
        let konst = space.top();
        let mut vs = VarSupply::new();
        let (x, b) = (vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add(Qual::Const(konst), x);
        cs.add(x, b);
        let internal: HashSet<QVar> = [x].into_iter().collect();
        let out = compact(cs.constraints(), &internal, 1000);
        assert_eq!(out.constraints.len(), 1);
        assert_eq!(out.constraints[0].lhs, Qual::Const(konst));
        assert_eq!(out.constraints[0].rhs, Qual::Var(b));
    }
}
