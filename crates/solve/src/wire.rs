//! A tiny, dependency-free binary codec for persisting solver data —
//! constraints, solutions, diagnostics — to disk (the incremental
//! analysis cache) and back.
//!
//! The format is deliberately dumb: little-endian fixed-width integers
//! and length-prefixed UTF-8 strings, written in a fixed field order.
//! There is no self-description and no skipping — a reader must know
//! the exact layout, which is versioned by the *container* (the cache
//! file header), not here. Every decode path returns [`WireError`]
//! instead of panicking: a truncated or bit-flipped input must surface
//! as a structured error the cache layer can turn into a diagnostic.
//!
//! [`Provenance::what`] is a `&'static str` by design (constraint
//! generation interns nothing); deserialization restores it through a
//! small global interner ([`intern_static`]), bounded in practice by
//! the handful of distinct provenance labels the engines use.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use qual_lattice::QualSet;

use crate::constraint::Constraint;
use crate::diag::{Diagnostic, Phase, Severity};
use crate::solver::Solution;
use crate::term::{Provenance, QVar, Qual};

/// A decode failure: the bytes do not describe what the reader expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the field did.
    Truncated,
    /// A field decoded to an impossible value (bad tag, non-UTF-8
    /// string, implausible length).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("input truncated"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes values into a growing byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The serialized bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize` as u64 (lengths, counts).
    pub fn len_prefix(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// A bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len_prefix(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// `Option<String>`-shaped field: presence byte then the string.
    pub fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
            None => self.bool(false),
        }
    }
}

/// Deserializes values from a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    ///
    /// Fault point `wire.decode`: a `Garbage` fault truncates the
    /// reader's view of the buffer, simulating a torn payload that the
    /// downstream decoder must reject with [`WireError`] — exactly the
    /// path real bit rot takes through the cache.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        let buf = match qual_faultpoint::hit("wire.decode") {
            Some(qual_faultpoint::FaultKind::Garbage) => &buf[..buf.len() / 2],
            _ => buf,
        };
        Reader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A length/count written by [`Writer::len_prefix`]. Rejects lengths
    /// that could not possibly fit in the remaining input, so a
    /// bit-flipped length fails fast instead of attempting a giant
    /// allocation.
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| WireError::Malformed("length"))?;
        if v > self.buf.len().saturating_sub(self.pos).saturating_mul(64) + 4096 {
            return Err(WireError::Malformed("implausible length"));
        }
        Ok(v)
    }

    /// A bool byte (strictly 0 or 1 — anything else is corruption).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool")),
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.len_prefix()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::Malformed("utf-8 string"))
    }

    /// Presence-prefixed optional string.
    pub fn opt_str(&mut self) -> Result<Option<String>, WireError> {
        Ok(if self.bool()? { Some(self.str()?) } else { None })
    }
}

/// Interns a string into the process-global static table, so
/// deserialized [`Provenance::what`] fields can satisfy the `&'static
/// str` type. The table only grows, but its population is bounded by
/// the distinct provenance labels ever decoded — a few dozen literals.
#[must_use]
pub fn intern_static(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeSet::new()));
    // Poison-tolerant: a worker panicking elsewhere must not turn every
    // later decode into a second panic. The set is always consistent —
    // insertion happens after the leak, and a leaked-but-not-inserted
    // string is only a few wasted bytes.
    let mut guard = table.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(hit) = guard.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(leaked);
    leaked
}

/// Encodes a [`Qual`].
pub fn put_qual(w: &mut Writer, q: Qual) {
    match q {
        Qual::Var(v) => {
            w.u8(0);
            w.u32(u32::try_from(v.index()).expect("var index fits u32"));
        }
        Qual::Const(c) => {
            w.u8(1);
            w.u64(c.bits());
        }
    }
}

/// Decodes a [`Qual`].
pub fn get_qual(r: &mut Reader<'_>) -> Result<Qual, WireError> {
    match r.u8()? {
        0 => Ok(Qual::Var(QVar::from_index(r.u32()? as usize))),
        1 => Ok(Qual::Const(QualSet::from_bits(r.u64()?))),
        _ => Err(WireError::Malformed("qual tag")),
    }
}

/// Encodes a [`Provenance`] (the label travels as a plain string).
pub fn put_provenance(w: &mut Writer, p: Provenance) {
    w.u32(p.lo);
    w.u32(p.hi);
    w.str(p.what);
}

/// Decodes a [`Provenance`], interning the label.
pub fn get_provenance(r: &mut Reader<'_>) -> Result<Provenance, WireError> {
    let lo = r.u32()?;
    let hi = r.u32()?;
    let what = intern_static(&r.str()?);
    Ok(Provenance { lo, hi, what })
}

/// Encodes a [`Constraint`].
pub fn put_constraint(w: &mut Writer, c: &Constraint) {
    put_qual(w, c.lhs);
    put_qual(w, c.rhs);
    w.u64(c.mask);
    put_provenance(w, c.origin);
}

/// Decodes a [`Constraint`].
pub fn get_constraint(r: &mut Reader<'_>) -> Result<Constraint, WireError> {
    Ok(Constraint {
        lhs: get_qual(r)?,
        rhs: get_qual(r)?,
        mask: r.u64()?,
        origin: get_provenance(r)?,
    })
}

/// Encodes a [`Solution`] as its per-variable least/greatest bit sets.
pub fn put_solution(w: &mut Writer, sol: &Solution) {
    let n = sol.var_count();
    w.len_prefix(n);
    for i in 0..n {
        w.u64(sol.least(QVar::from_index(i)).bits());
        w.u64(sol.greatest(QVar::from_index(i)).bits());
    }
}

/// Decodes a [`Solution`].
pub fn get_solution(r: &mut Reader<'_>) -> Result<Solution, WireError> {
    let n = r.len_prefix()?;
    let mut least = Vec::with_capacity(n.min(65536));
    let mut greatest = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        least.push(QualSet::from_bits(r.u64()?));
        greatest.push(QualSet::from_bits(r.u64()?));
    }
    Ok(Solution::from_parts(least, greatest))
}

fn severity_tag(s: Severity) -> u8 {
    match s {
        Severity::Warning => 0,
        Severity::Error => 1,
    }
}

fn phase_tag(p: Phase) -> u8 {
    match p {
        Phase::Lex => 0,
        Phase::Parse => 1,
        Phase::Sema => 2,
        Phase::Infer => 3,
        Phase::Solve => 4,
        Phase::Verify => 5,
    }
}

/// Encodes a [`Diagnostic`].
pub fn put_diagnostic(w: &mut Writer, d: &Diagnostic) {
    w.u8(severity_tag(d.severity));
    w.u8(phase_tag(d.phase));
    match d.span {
        Some((lo, hi)) => {
            w.bool(true);
            w.u32(lo);
            w.u32(hi);
        }
        None => w.bool(false),
    }
    w.opt_str(d.function.as_deref());
    w.str(&d.message);
}

/// Decodes a [`Diagnostic`].
pub fn get_diagnostic(r: &mut Reader<'_>) -> Result<Diagnostic, WireError> {
    let severity = match r.u8()? {
        0 => Severity::Warning,
        1 => Severity::Error,
        _ => return Err(WireError::Malformed("severity tag")),
    };
    let phase = match r.u8()? {
        0 => Phase::Lex,
        1 => Phase::Parse,
        2 => Phase::Sema,
        3 => Phase::Infer,
        4 => Phase::Solve,
        5 => Phase::Verify,
        _ => return Err(WireError::Malformed("phase tag")),
    };
    let span = if r.bool()? {
        Some((r.u32()?, r.u32()?))
    } else {
        None
    };
    let function = r.opt_str()?;
    let message = r.str()?;
    Ok(Diagnostic {
        severity,
        phase,
        span,
        function,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarSupply;
    use qual_lattice::QualSpace;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.bool(true);
        w.str("héllo");
        w.opt_str(None);
        w.opt_str(Some("x"));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.opt_str().unwrap(), Some("x".to_owned()));
        assert!(r.is_at_end());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.str("a longer string");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.str().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tags_are_malformed() {
        let mut r = Reader::new(&[9]);
        assert_eq!(get_qual(&mut r), Err(WireError::Malformed("qual tag")));
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::Malformed("bool")));
    }

    #[test]
    fn constraint_round_trips_with_interned_provenance() {
        let mut vs = VarSupply::new();
        let v = vs.fresh();
        let c = Constraint {
            lhs: Qual::Var(v),
            rhs: Qual::Const(QualSet::from_bits(0b101)),
            mask: 0b1,
            origin: Provenance::at(3, 9, "assignment"),
        };
        let mut w = Writer::new();
        put_constraint(&mut w, &c);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = get_constraint(&mut r).unwrap();
        assert_eq!(back, c);
        // The label is interned: decoding twice yields pointer-equal strs.
        let mut r2 = Reader::new(&bytes);
        let again = get_constraint(&mut r2).unwrap();
        assert!(std::ptr::eq(back.origin.what, again.origin.what));
    }

    #[test]
    fn solution_round_trips() {
        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let a = vs.fresh();
        let b = vs.fresh();
        let mut cs = crate::constraint::ConstraintSet::new();
        cs.add(Qual::Const(space.top()), a);
        cs.add(a, b);
        let sol = cs.solve(&space, &vs).unwrap();
        let mut w = Writer::new();
        put_solution(&mut w, &sol);
        let bytes = w.into_bytes();
        let back = get_solution(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.var_count(), sol.var_count());
        for v in [a, b] {
            assert_eq!(back.least(v), sol.least(v));
            assert_eq!(back.greatest(v), sol.greatest(v));
        }
    }

    #[test]
    fn diagnostic_round_trips() {
        let d = Diagnostic::error(Phase::Infer, "work budget exceeded")
            .with_span(10, 20)
            .with_function("heavy");
        let w2 = Diagnostic::warning(Phase::Verify, "no span");
        for d in [d, w2] {
            let mut w = Writer::new();
            put_diagnostic(&mut w, &d);
            let bytes = w.into_bytes();
            assert_eq!(get_diagnostic(&mut Reader::new(&bytes)).unwrap(), d);
        }
    }
}
