//! Qualifier terms: the `Q ::= κ | l` production of the paper's qualified
//! type grammar (Figure 3), plus variable supply and provenance tracking.

use std::fmt;

use qual_lattice::{QualSet, QualSpace};

/// A qualifier variable `κ` ranging over lattice elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QVar(pub(crate) u32);

impl QVar {
    /// The variable's index (dense, issued in order by [`VarSupply`]).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a variable from a raw index previously obtained from
    /// [`QVar::index`]. Use only with indices issued by the same supply.
    #[must_use]
    pub fn from_index(i: usize) -> QVar {
        QVar(u32::try_from(i).expect("variable index fits in u32"))
    }
}

impl fmt::Display for QVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "κ{}", self.0)
    }
}

/// Issues fresh qualifier variables.
///
/// ```
/// use qual_solve::VarSupply;
/// let mut s = VarSupply::new();
/// let a = s.fresh();
/// let b = s.fresh();
/// assert_ne!(a, b);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct VarSupply {
    next: u32,
}

impl VarSupply {
    /// Creates a supply starting at variable 0.
    #[must_use]
    pub fn new() -> VarSupply {
        VarSupply::default()
    }

    /// Returns a variable never returned before by this supply.
    pub fn fresh(&mut self) -> QVar {
        let v = QVar(self.next);
        self.next = self
            .next
            .checked_add(1)
            .expect("qualifier variable supply exhausted");
        v
    }

    /// The number of variables issued so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.next as usize
    }
}

/// A qualifier term: either a variable `κ` or a lattice constant `l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Qual {
    /// A qualifier variable.
    Var(QVar),
    /// A lattice element.
    Const(QualSet),
}

impl Qual {
    /// The variable inside, if this is a variable.
    #[must_use]
    pub fn as_var(self) -> Option<QVar> {
        match self {
            Qual::Var(v) => Some(v),
            Qual::Const(_) => None,
        }
    }

    /// Renders the term, using `space` to name constants.
    #[must_use]
    pub fn render(self, space: &QualSpace) -> String {
        match self {
            Qual::Var(v) => v.to_string(),
            Qual::Const(c) => {
                let s = space.render(c);
                if s.is_empty() {
                    "∅".to_owned()
                } else {
                    s
                }
            }
        }
    }
}

impl From<QVar> for Qual {
    fn from(v: QVar) -> Qual {
        Qual::Var(v)
    }
}

impl From<QualSet> for Qual {
    fn from(c: QualSet) -> Qual {
        Qual::Const(c)
    }
}

/// Where a constraint came from, for error reporting.
///
/// `lo` and `hi` are byte offsets into whatever source text the client
/// analysis was processing (0,0 when synthetic), and `what` is a short
/// static description such as `"assignment"` or `"qualifier assertion"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Provenance {
    /// Start byte offset in the client's source text.
    pub lo: u32,
    /// End byte offset in the client's source text.
    pub hi: u32,
    /// A short description of the program construct that generated the
    /// constraint.
    pub what: &'static str,
}

impl Provenance {
    /// A provenance with no source location.
    #[must_use]
    pub fn synthetic(what: &'static str) -> Provenance {
        Provenance { lo: 0, hi: 0, what }
    }

    /// A provenance for source bytes `lo..hi`.
    #[must_use]
    pub fn at(lo: u32, hi: u32, what: &'static str) -> Provenance {
        Provenance { lo, hi, what }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == 0 && self.hi == 0 {
            write!(f, "{}", self.what)
        } else {
            write!(f, "{} at bytes {}..{}", self.what, self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supply_is_dense_and_distinct() {
        let mut s = VarSupply::new();
        let vs: Vec<QVar> = (0..100).map(|_| s.fresh()).collect();
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(v.index(), i);
            assert_eq!(QVar::from_index(i), *v);
        }
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn qual_conversions() {
        let mut s = VarSupply::new();
        let v = s.fresh();
        assert_eq!(Qual::from(v).as_var(), Some(v));
        let c = QualSet::from_bits(3);
        assert_eq!(Qual::from(c).as_var(), None);
    }

    #[test]
    fn render_constants() {
        let space = QualSpace::figure2();
        let e = space.parse_set("const").unwrap();
        assert_eq!(Qual::Const(e).render(&space), "const");
        assert_eq!(Qual::Const(space.none()).render(&space), "∅");
        assert_eq!(Qual::Var(QVar(7)).render(&space), "κ7");
    }

    #[test]
    fn provenance_display() {
        assert_eq!(Provenance::synthetic("test").to_string(), "test");
        assert_eq!(
            Provenance::at(3, 9, "assignment").to_string(),
            "assignment at bytes 3..9"
        );
    }
}
