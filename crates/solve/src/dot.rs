//! Graphviz (DOT) export of a constraint system — the practical answer
//! to §6's observation that "these constraint systems can be large and
//! difficult to interpret": draw them.
//!
//! Variables become ellipse nodes (labelled with their least/greatest
//! solution when one is supplied), constants become boxes, and each
//! `⊑` constraint an edge (dashed when masked to a strict subset of the
//! coordinates).

use std::collections::HashMap;
use std::fmt::Write as _;

use qual_lattice::QualSpace;

use crate::constraint::ConstraintSet;
use crate::solver::Solution;
use crate::term::{QVar, Qual};

/// Renders `cs` as a DOT digraph. Pass a [`Solution`] to annotate each
/// variable with its `[least, greatest]` interval.
#[must_use]
pub fn render_dot(cs: &ConstraintSet, space: &QualSpace, solution: Option<&Solution>) -> String {
    let mut out = String::from("digraph constraints {\n  rankdir=LR;\n");
    let mut const_ids: HashMap<u64, usize> = HashMap::new();

    let var_node = |v: QVar| format!("v{}", v.index());
    let mut ensure_const = |out: &mut String, bits: u64| -> String {
        let next = const_ids.len();
        let id = *const_ids.entry(bits).or_insert(next);
        let name = format!("c{id}");
        if id == next {
            let label = {
                let rendered = space.render(qual_lattice::QualSet::from_bits(bits));
                if rendered.is_empty() {
                    "∅".to_owned()
                } else {
                    rendered
                }
            };
            let _ = writeln!(out, "  {name} [shape=box, label=\"{label}\"];");
        }
        name
    };

    // Variable nodes (with solution intervals when available).
    for v in cs.mentioned_vars() {
        let label = match solution {
            Some(sol) => {
                let lo = space.render(sol.least(v));
                let hi = space.render(sol.greatest(v));
                format!("{v}\\n[{lo} , {hi}]")
            }
            None => v.to_string(),
        };
        let _ = writeln!(out, "  {} [label=\"{label}\"];", var_node(v));
    }

    let top = space.top().bits();
    for c in cs.constraints() {
        let from = match c.lhs {
            Qual::Var(v) => var_node(v),
            Qual::Const(k) => ensure_const(&mut out, k.bits()),
        };
        let to = match c.rhs {
            Qual::Var(v) => var_node(v),
            Qual::Const(k) => ensure_const(&mut out, k.bits()),
        };
        let masked = c.mask & top != top;
        let style = if masked { ", style=dashed" } else { "" };
        let _ = writeln!(
            out,
            "  {from} -> {to} [label=\"{}\"{style}];",
            c.origin.what
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Provenance, VarSupply};

    #[test]
    fn dot_contains_nodes_edges_and_intervals() {
        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let (a, b) = (vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add_with(Qual::Const(space.top()), a, Provenance::synthetic("annot"));
        cs.add_with(a, b, Provenance::synthetic("flow"));
        let sol = cs.solve(&space, &vs).unwrap();
        let dot = render_dot(&cs, &space, Some(&sol));
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(dot.contains("v0"), "{dot}");
        assert!(dot.contains("v1"), "{dot}");
        assert!(dot.contains("shape=box"), "{dot}");
        assert!(dot.contains("flow"), "{dot}");
        assert!(dot.contains("const"), "annotated interval: {dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn masked_edges_are_dashed() {
        let space = qual_lattice::QualSpace::figure2();
        let c_id = space.id("const").unwrap();
        let mut vs = VarSupply::new();
        let (a, b) = (vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add_masked(a, b, &[c_id], Provenance::synthetic("wf"));
        let dot = render_dot(&cs, &space, None);
        assert!(dot.contains("style=dashed"), "{dot}");
    }

    #[test]
    fn constants_are_shared_nodes() {
        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let (a, b) = (vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add(Qual::Const(space.top()), a);
        cs.add(Qual::Const(space.top()), b);
        let dot = render_dot(&cs, &space, None);
        // One box for `const`, referenced twice.
        assert_eq!(dot.matches("shape=box").count(), 1, "{dot}");
    }
}
