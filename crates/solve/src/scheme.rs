//! Polymorphic constrained types `∀κ⃗. body \ C` (§3.2 of the paper).
//!
//! A [`Scheme`] pairs a client-side body (a qualified type in
//! `qual-lambda`, a function signature in `qual-constinfer`) with the
//! qualifier variables generalized over and the constraints that mention
//! them. Instantiation fresh-renames the bound variables and copies the
//! constraints — rule (Var′) of the paper. Generalization corresponds to
//! rule (Letv); the existential binding `∃κ⃗.C₁` is realized by keeping
//! the bound-variable constraints inside the scheme (they are re-emitted,
//! renamed, at each use) while constraints among free variables stay in
//! the caller's constraint set exactly once.

use std::collections::{HashMap, HashSet};

use crate::constraint::{Constraint, ConstraintSet};
use crate::term::{QVar, Qual, VarSupply};

/// A polymorphic constrained value `∀κ⃗. body \ C`.
#[derive(Debug, Clone)]
pub struct Scheme<B> {
    body: B,
    bound: Vec<QVar>,
    constraints: Vec<Constraint>,
}

impl<B> Scheme<B> {
    /// A scheme with no bound variables (a monomorphic binding).
    pub fn monomorphic(body: B) -> Scheme<B> {
        Scheme {
            body,
            bound: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Generalizes `body` over `candidates` (the variables not free in the
    /// type environment), capturing from `constraints` every constraint
    /// that mentions a bound variable.
    ///
    /// Constraints *not* mentioning a bound variable are instantiation-
    /// independent and are deliberately not captured: the caller keeps
    /// them in its own constraint set (that is the `(∃κ⃗.C₁) ∪ C₂` of rule
    /// (Letv)).
    pub fn generalize(body: B, candidates: Vec<QVar>, constraints: &ConstraintSet) -> Scheme<B> {
        Scheme::generalize_in(body, candidates, constraints.constraints())
    }

    /// Like [`Scheme::generalize`], but scanning only `window` — the
    /// slice of constraints added since generalization's variable window
    /// opened. When every bound variable was created inside the window
    /// and the constraint set only grows, constraints mentioning bound
    /// variables can only appear in that suffix, so this is equivalent to
    /// scanning everything and keeps repeated generalization linear.
    pub fn generalize_in(body: B, candidates: Vec<QVar>, window: &[Constraint]) -> Scheme<B> {
        let bound_set: HashSet<QVar> = candidates.iter().copied().collect();
        let captured = window
            .iter()
            .filter(|c| {
                [c.lhs, c.rhs]
                    .into_iter()
                    .filter_map(Qual::as_var)
                    .any(|v| bound_set.contains(&v))
            })
            .copied()
            .collect();
        Scheme {
            body,
            bound: candidates,
            constraints: captured,
        }
    }

    /// Reassembles a scheme from its parts — the inverse of taking
    /// [`Scheme::body`], [`Scheme::bound_vars`], and
    /// [`Scheme::captured_constraints`] apart. Used by the incremental
    /// driver to rebuild a generalized signature from its serialized
    /// summary; the caller is responsible for the parts being coherent
    /// (constraints expressed over the bound and free variables of the
    /// receiving constraint world).
    pub fn from_parts(body: B, bound: Vec<QVar>, constraints: Vec<Constraint>) -> Scheme<B> {
        Scheme {
            body,
            bound,
            constraints,
        }
    }

    /// The quantified variables `κ⃗`.
    #[must_use]
    pub fn bound_vars(&self) -> &[QVar] {
        &self.bound
    }

    /// The captured constraints (over bound and free variables).
    #[must_use]
    pub fn captured_constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// A shared view of the body (useful for monomorphic use sites).
    #[must_use]
    pub fn body(&self) -> &B {
        &self.body
    }

    /// Whether this scheme quantifies over anything.
    #[must_use]
    pub fn is_polymorphic(&self) -> bool {
        !self.bound.is_empty()
    }

    /// Returns a scheme with every bound variable *not* in `keep`
    /// eliminated from the captured constraints (see
    /// [`crate::simplify::compact`]). The instantiation behaviour at the
    /// kept variables is unchanged; instantiation just copies fewer
    /// constraints — the practical answer to §6's presentation problem
    /// and a constant-factor win at every call site.
    #[must_use]
    pub fn simplified(self, keep: &HashSet<QVar>) -> Scheme<B> {
        let internal: HashSet<QVar> = self
            .bound
            .iter()
            .copied()
            .filter(|v| !keep.contains(v))
            .collect();
        let compacted = crate::simplify::compact(&self.constraints, &internal, 64);
        let bound = self
            .bound
            .into_iter()
            .filter(|v| keep.contains(v) || compacted.kept.contains(v))
            .collect();
        Scheme {
            body: self.body,
            bound,
            constraints: compacted.constraints,
        }
    }

    /// Instantiates the scheme: draws a fresh variable for each bound
    /// variable, emits the captured constraints (renamed) into `out`, and
    /// returns `rename_body` applied to the body and the substitution.
    ///
    /// This is rule (Var′): `A(x) = ∀κ⃗.ρ\C ⊢ x : ρ[κ⃗↦Q⃗]; C[κ⃗↦Q⃗]`.
    pub fn instantiate<R>(
        &self,
        supply: &mut VarSupply,
        out: &mut ConstraintSet,
        rename_body: impl FnOnce(&B, &dyn Fn(QVar) -> QVar) -> R,
    ) -> R {
        let map: HashMap<QVar, QVar> = self
            .bound
            .iter()
            .map(|&v| (v, supply.fresh()))
            .collect();
        let subst = |v: QVar| map.get(&v).copied().unwrap_or(v);
        out.extend(self.constraints.iter().map(|c| Constraint {
            lhs: rename_qual(c.lhs, &subst),
            rhs: rename_qual(c.rhs, &subst),
            mask: c.mask,
            origin: c.origin,
        }));
        rename_body(&self.body, &subst)
    }
}

fn rename_qual(q: Qual, subst: &impl Fn(QVar) -> QVar) -> Qual {
    match q {
        Qual::Var(v) => Qual::Var(subst(v)),
        Qual::Const(c) => Qual::Const(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Provenance;
    use qual_lattice::QualSpace;

    #[test]
    fn monomorphic_scheme_has_no_bound_vars() {
        let s: Scheme<u32> = Scheme::monomorphic(42);
        assert!(!s.is_polymorphic());
        assert_eq!(*s.body(), 42);
    }

    #[test]
    fn generalize_captures_only_bound_constraints() {
        let mut vs = VarSupply::new();
        let (bound, free, other_free) = (vs.fresh(), vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add(bound, free); // mentions bound: captured
        cs.add(free, other_free); // free only: not captured
        let s = Scheme::generalize(bound, vec![bound], &cs);
        assert_eq!(s.captured_constraints().len(), 1);
        assert!(s.is_polymorphic());
    }

    #[test]
    fn instantiation_freshens_bound_leaves_free() {
        let space = QualSpace::const_only();
        let konst = space.parse_set("const").unwrap();
        let mut vs = VarSupply::new();
        let (bound, free) = (vs.fresh(), vs.fresh());
        let mut cs = ConstraintSet::new();
        cs.add_with(bound, free, Provenance::synthetic("body"));
        cs.add_with(Qual::Const(konst), bound, Provenance::synthetic("annot"));
        let s = Scheme::generalize(bound, vec![bound], &cs);

        let mut out = ConstraintSet::new();
        let inst1 = s.instantiate(&mut vs, &mut out, |b, f| f(*b));
        let inst2 = s.instantiate(&mut vs, &mut out, |b, f| f(*b));
        assert_ne!(inst1, bound);
        assert_ne!(inst2, bound);
        assert_ne!(inst1, inst2);
        // Each instantiation emitted both captured constraints.
        assert_eq!(out.len(), 4);
        // The free variable is untouched.
        assert!(out
            .constraints()
            .iter()
            .any(|c| c.rhs == Qual::Var(free) && c.lhs == Qual::Var(inst1)));
        assert!(out
            .constraints()
            .iter()
            .any(|c| c.rhs == Qual::Var(free) && c.lhs == Qual::Var(inst2)));
    }

    #[test]
    fn separate_instantiations_are_independent() {
        // The paper's id example (§3.2): one use at const, one at ∅,
        // both satisfiable simultaneously after instantiation.
        let space = QualSpace::const_only();
        let konst = space.parse_set("const").unwrap();
        let mut vs = VarSupply::new();
        let x = vs.fresh(); // the qualifier on id's argument/result
        let cs = ConstraintSet::new();
        let s = Scheme::generalize(x, vec![x], &cs);

        let mut out = ConstraintSet::new();
        let i1 = s.instantiate(&mut vs, &mut out, |b, f| f(*b));
        let i2 = s.instantiate(&mut vs, &mut out, |b, f| f(*b));
        // Use 1 forces const; use 2 forces non-const.
        out.add(Qual::Const(konst), i1);
        out.add(i2, Qual::Const(space.not_q(space.id("const").unwrap())));
        let sol = out.solve(&space, &vs).expect("independent uses coexist");
        assert!(sol.least(i1).has(&space, space.id("const").unwrap()));
        assert!(!sol.greatest(i2).has(&space, space.id("const").unwrap()));
    }
}
