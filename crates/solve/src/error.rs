//! Solver errors: every unsatisfiable constraint, with provenance.

use std::fmt;

use qual_lattice::QualSet;

use crate::constraint::Constraint;

/// One unsatisfiable constraint: the best (least) value that reached the
/// left side does not fit under the best (greatest) bound on the right.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The offending constraint (with provenance).
    pub constraint: Constraint,
    /// The least value forced onto the left side.
    pub lower: QualSet,
    /// The greatest value admitted on the right side.
    pub upper: QualSet,
}

/// The constraint system has no solution.
///
/// Contains *every* violated constraint, not just the first, so a tool can
/// report all qualifier errors in one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveError {
    /// All violations discovered.
    pub violations: Vec<Violation>,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsatisfiable qualifier constraints ({} violation{}):",
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" }
        )?;
        for v in &self.violations {
            write!(f, " [{}]", v.constraint.origin)?;
        }
        Ok(())
    }
}

impl std::error::Error for SolveError {}

/// Why a budgeted solve produced no solution: either the system is
/// genuinely unsatisfiable, or the solver hit its iteration cap before
/// reaching a fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveFailure {
    /// No assignment exists; see the violations.
    Unsat(SolveError),
    /// The worklist exceeded its step budget. The partial state is
    /// discarded: a truncated fixpoint is neither a least nor a
    /// greatest solution, so nothing useful can be salvaged.
    BudgetExceeded {
        /// Steps actually taken before giving up.
        steps: u64,
        /// The configured cap.
        limit: u64,
    },
    /// The calling thread's cooperative deadline
    /// ([`qual_faultpoint::cancel`]) fired mid-solve. Like a blown
    /// budget, the partial state is discarded and no claim is made
    /// about satisfiability.
    Cancelled {
        /// Steps taken before the cancellation was observed.
        steps: u64,
    },
}

impl fmt::Display for SolveFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveFailure::Unsat(e) => e.fmt(f),
            SolveFailure::BudgetExceeded { steps, limit } => write!(
                f,
                "solver budget exceeded: {steps} worklist steps (limit {limit})"
            ),
            SolveFailure::Cancelled { steps } => write!(
                f,
                "solve cancelled by deadline after {steps} worklist step(s)"
            ),
        }
    }
}

impl std::error::Error for SolveFailure {}

impl From<SolveError> for SolveFailure {
    fn from(e: SolveError) -> Self {
        SolveFailure::Unsat(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Provenance, Qual};

    #[test]
    fn display_counts_violations() {
        let c = Constraint {
            lhs: Qual::Const(QualSet::from_bits(1)),
            rhs: Qual::Const(QualSet::from_bits(0)),
            mask: u64::MAX,
            origin: Provenance::synthetic("cast"),
        };
        let e = SolveError {
            violations: vec![Violation {
                constraint: c,
                lower: QualSet::from_bits(1),
                upper: QualSet::from_bits(0),
            }],
        };
        let s = e.to_string();
        assert!(s.contains("1 violation"), "got: {s}");
        assert!(s.contains("cast"), "got: {s}");
    }
}
