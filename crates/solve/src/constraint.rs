//! Atomic constraint sets: `C ::= {Q₁ ⊑ Q₂} | C₁ ∪ C₂` after structural
//! decomposition (§3.1 of the paper).

use std::fmt;

use qual_lattice::QualSpace;

use crate::error::{SolveError, SolveFailure};
use crate::simplify::Collapser;
use crate::solver::{self, Solution};
use crate::term::{Provenance, QVar, Qual, VarSupply};

/// One atomic constraint `lhs ⊑ rhs` with its provenance.
///
/// The optional `mask` restricts the constraint to a subset of qualifier
/// coordinates: with canonical mask bits `m`, the constraint means
/// `lhs ⊓ m ⊑ rhs ⊔ ¬m` — i.e. only the coordinates in `m` are related.
/// Masked constraints keep per-qualifier rules (like `const`'s
/// (Assign′) or binding-time well-formedness) from accidentally
/// constraining unrelated qualifiers declared in the same space. The full
/// mask (`u64::MAX`) is the ordinary constraint of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Lower side.
    pub lhs: Qual,
    /// Upper side.
    pub rhs: Qual,
    /// Canonical bits of the coordinates this constraint relates.
    pub mask: u64,
    /// Why the constraint exists.
    pub origin: Provenance,
}

impl Constraint {
    /// Renders the constraint using `space` to name constants.
    #[must_use]
    pub fn render(&self, space: &QualSpace) -> String {
        format!("{} ⊑ {}", self.lhs.render(space), self.rhs.render(space))
    }
}

/// A set of atomic constraints over one qualifier lattice.
///
/// The set is kept as an insertion-ordered vector; duplicates are
/// harmless to the solver and preserved so that provenance is not lost.
#[derive(Debug, Default, Clone)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
    /// Online cycle collapse, when enabled: observes every constraint
    /// as it is added and maintains full-mask equivalence classes that
    /// seed the dense solver (see [`Collapser`]).
    collapse: Option<Collapser>,
}

impl ConstraintSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Turns on online simplification: from now on (and retroactively
    /// for constraints already present) every added constraint feeds a
    /// [`Collapser`], whose equivalence classes pre-contract the solver's
    /// constraint graph. Purely an accelerator — solutions, violations
    /// and diagnostics are unchanged.
    pub fn enable_online_collapse(&mut self) {
        let mut col = Collapser::new();
        for (idx, c) in self.constraints.iter().enumerate() {
            col.observe(idx, c);
        }
        self.collapse = Some(col);
    }

    /// The online collapse classes, if enabled.
    #[must_use]
    pub fn collapser(&self) -> Option<&Collapser> {
        self.collapse.as_ref()
    }

    /// The single append point: every mutation path funnels through
    /// here so the online collapser misses nothing.
    fn push(&mut self, c: Constraint) {
        if let Some(col) = &mut self.collapse {
            col.observe(self.constraints.len(), &c);
        }
        self.constraints.push(c);
    }

    /// Adds `lhs ⊑ rhs` with no source location.
    pub fn add(&mut self, lhs: impl Into<Qual>, rhs: impl Into<Qual>) {
        self.add_with(lhs, rhs, Provenance::synthetic("constraint"));
    }

    /// Adds `lhs ⊑ rhs` recording where it came from.
    pub fn add_with(&mut self, lhs: impl Into<Qual>, rhs: impl Into<Qual>, origin: Provenance) {
        self.push(Constraint {
            lhs: lhs.into(),
            rhs: rhs.into(),
            mask: u64::MAX,
            origin,
        });
    }

    /// Adds `lhs ⊑ rhs` restricted to the coordinates of the qualifiers
    /// in `ids` (see [`Constraint::mask`]).
    pub fn add_masked(
        &mut self,
        lhs: impl Into<Qual>,
        rhs: impl Into<Qual>,
        ids: &[qual_lattice::QualId],
        origin: Provenance,
    ) {
        let mask = ids.iter().fold(0u64, |m, id| m | (1u64 << id.index()));
        self.push(Constraint {
            lhs: lhs.into(),
            rhs: rhs.into(),
            mask,
            origin,
        });
    }

    /// Adds the equality `a = b` as the two inequalities `a ⊑ b`, `b ⊑ a`
    /// (the paper's abbreviation `ρ = ρ′` ⇔ `{ρ ⊑ ρ′, ρ′ ⊑ ρ}`).
    pub fn add_eq(&mut self, a: impl Into<Qual>, b: impl Into<Qual>, origin: Provenance) {
        let (a, b) = (a.into(), b.into());
        self.add_with(a, b, origin);
        self.add_with(b, a, origin);
    }

    /// Appends every constraint of `other` (the `C₁ ∪ C₂` production).
    pub fn extend_from(&mut self, other: &ConstraintSet) {
        for c in &other.constraints {
            self.push(*c);
        }
    }

    /// The constraints, in insertion order.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Solves the system, returning least and greatest solutions.
    ///
    /// `vars` must be the supply that issued every variable mentioned in
    /// the set (its `count` sizes the solution tables).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] listing every unsatisfiable constraint.
    pub fn solve(&self, space: &QualSpace, vars: &VarSupply) -> Result<Solution, SolveError> {
        solver::solve(space, vars.count(), &self.constraints, self.collapse.as_ref())
    }

    /// Like [`ConstraintSet::solve`] but gives up with
    /// [`SolveFailure::BudgetExceeded`] once the worklist has taken
    /// `max_steps` edge relaxations, so a pathological system becomes a
    /// structured diagnostic rather than an unbounded stall.
    ///
    /// # Errors
    ///
    /// Returns [`SolveFailure::Unsat`] when no assignment exists and
    /// [`SolveFailure::BudgetExceeded`] when the cap is hit first.
    pub fn solve_with_budget(
        &self,
        space: &QualSpace,
        vars: &VarSupply,
        max_steps: u64,
    ) -> Result<Solution, SolveFailure> {
        solver::solve_budgeted(
            space,
            vars.count(),
            &self.constraints,
            max_steps,
            self.collapse.as_ref(),
        )
    }

    /// Solves on the retained reference path (the original sparse
    /// worklist solver) instead of the dense one. Exists solely as the
    /// oracle side of the dense-vs-reference differential suite; the
    /// two must agree byte for byte on every input.
    ///
    /// # Errors
    ///
    /// Same contract as [`ConstraintSet::solve_with_budget`].
    pub fn solve_with_budget_reference(
        &self,
        space: &QualSpace,
        vars: &VarSupply,
        max_steps: u64,
    ) -> Result<Solution, SolveFailure> {
        solver::solve_budgeted_reference(space, vars.count(), &self.constraints, max_steps)
    }

    /// Drops every constraint after the first `len` — the rollback half
    /// of a mark/rollback pair, used to discard constraints emitted by
    /// an analysis that failed partway. The online collapser (when
    /// enabled) rolls back in lockstep.
    pub fn truncate(&mut self, len: usize) {
        self.constraints.truncate(len);
        if let Some(col) = &mut self.collapse {
            col.rollback(len);
        }
    }

    /// Like [`ConstraintSet::solve`] but sized by an explicit variable
    /// count (useful when the supply itself is not at hand).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] listing every unsatisfiable constraint.
    pub fn solve_with_count(
        &self,
        space: &QualSpace,
        var_count: usize,
    ) -> Result<Solution, SolveError> {
        solver::solve(space, var_count, &self.constraints, self.collapse.as_ref())
    }

    /// Variables mentioned anywhere in the set, deduplicated, in first-use
    /// order.
    #[must_use]
    pub fn mentioned_vars(&self) -> Vec<QVar> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for c in &self.constraints {
            for q in [c.lhs, c.rhs] {
                if let Qual::Var(v) = q {
                    if seen.insert(v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Renders the whole set, one constraint per line.
    #[must_use]
    pub fn render(&self, space: &QualSpace) -> String {
        let mut s = String::new();
        for c in &self.constraints {
            s.push_str(&c.render(space));
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} constraints", self.constraints.len())
    }
}

impl Extend<Constraint> for ConstraintSet {
    fn extend<T: IntoIterator<Item = Constraint>>(&mut self, iter: T) {
        for c in iter {
            self.push(c);
        }
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> ConstraintSet {
        ConstraintSet {
            constraints: iter.into_iter().collect(),
            collapse: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qual_lattice::QualSpace;

    #[test]
    fn add_eq_produces_both_directions() {
        let mut cs = ConstraintSet::new();
        let mut vs = VarSupply::new();
        let (a, b) = (vs.fresh(), vs.fresh());
        cs.add_eq(a, b, Provenance::synthetic("eq"));
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.constraints()[0].lhs, Qual::Var(a));
        assert_eq!(cs.constraints()[1].lhs, Qual::Var(b));
    }

    #[test]
    fn mentioned_vars_dedupes_in_order() {
        let mut cs = ConstraintSet::new();
        let mut vs = VarSupply::new();
        let (a, b, c) = (vs.fresh(), vs.fresh(), vs.fresh());
        cs.add(b, a);
        cs.add(a, c);
        cs.add(b, c);
        assert_eq!(cs.mentioned_vars(), vec![b, a, c]);
    }

    #[test]
    fn render_is_readable() {
        let space = QualSpace::const_only();
        let mut cs = ConstraintSet::new();
        let mut vs = VarSupply::new();
        let a = vs.fresh();
        cs.add(space.top(), a);
        assert_eq!(cs.render(&space), "const ⊑ κ0\n");
    }

    #[test]
    fn solve_with_budget_reports_exhaustion() {
        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let vars: Vec<_> = (0..64).map(|_| vs.fresh()).collect();
        let mut cs = ConstraintSet::new();
        cs.add(space.top(), vars[0]);
        for w in vars.windows(2) {
            cs.add(w[0], w[1]);
        }
        // Generous budget: solves fine.
        let sol = cs.solve_with_budget(&space, &vs, 1_000_000).unwrap();
        assert_eq!(sol.least(vars[63]), space.top());
        // Starved budget: structured failure, not a wrong answer.
        match cs.solve_with_budget(&space, &vs, 3) {
            Err(SolveFailure::BudgetExceeded { steps, limit: 3 }) => assert!(steps <= 3),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn truncate_rolls_back_to_mark() {
        let space = QualSpace::const_only();
        let mut vs = VarSupply::new();
        let a = vs.fresh();
        let mut cs = ConstraintSet::new();
        cs.add(space.top(), a);
        let mark = cs.len();
        cs.add(a, space.bottom()); // would be unsatisfiable
        assert!(cs.solve(&space, &vs).is_err());
        cs.truncate(mark);
        assert!(cs.solve(&space, &vs).is_ok());
    }

    #[test]
    fn extend_from_unions() {
        let mut vs = VarSupply::new();
        let a = vs.fresh();
        let mut c1 = ConstraintSet::new();
        c1.add(a, a);
        let mut c2 = ConstraintSet::new();
        c2.add(a, a);
        c2.extend_from(&c1);
        assert_eq!(c2.len(), 2);
    }
}
