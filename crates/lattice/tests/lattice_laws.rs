//! Property tests: the qualifier lattice of Definition 2 really is a
//! lattice, and the derived operations satisfy their specifications.

use proptest::prelude::*;
use qual_lattice::{QualSet, QualSpace, QualSpaceBuilder};

fn arb_space() -> impl Strategy<Value = QualSpace> {
    // Spaces with 1..=8 qualifiers of random polarity.
    prop::collection::vec(any::<bool>(), 1..=8).prop_map(|pols| {
        let mut b = QualSpaceBuilder::new();
        for (i, pos) in pols.iter().enumerate() {
            b = if *pos {
                b.positive(format!("q{i}"))
            } else {
                b.negative(format!("q{i}"))
            };
        }
        b.build().expect("generated space is valid")
    })
}

fn arb_elem(space: &QualSpace) -> impl Strategy<Value = QualSet> {
    let n = space.len();
    (0u64..(1u64 << n)).prop_map(QualSet::from_bits)
}

fn space_and_elems(k: usize) -> impl Strategy<Value = (QualSpace, Vec<QualSet>)> {
    arb_space().prop_flat_map(move |s| {
        let elems = prop::collection::vec(arb_elem(&s), k);
        elems.prop_map(move |es| (s.clone(), es))
    })
}

proptest! {
    #[test]
    fn join_meet_commutative((s, es) in space_and_elems(2)) {
        let (a, b) = (es[0], es[1]);
        prop_assert_eq!(s.join(a, b), s.join(b, a));
        prop_assert_eq!(s.meet(a, b), s.meet(b, a));
    }

    #[test]
    fn join_meet_associative((s, es) in space_and_elems(3)) {
        let (a, b, c) = (es[0], es[1], es[2]);
        prop_assert_eq!(s.join(a, s.join(b, c)), s.join(s.join(a, b), c));
        prop_assert_eq!(s.meet(a, s.meet(b, c)), s.meet(s.meet(a, b), c));
    }

    #[test]
    fn absorption((s, es) in space_and_elems(2)) {
        let (a, b) = (es[0], es[1]);
        prop_assert_eq!(s.join(a, s.meet(a, b)), a);
        prop_assert_eq!(s.meet(a, s.join(a, b)), a);
    }

    #[test]
    fn idempotence((s, es) in space_and_elems(1)) {
        let a = es[0];
        prop_assert_eq!(s.join(a, a), a);
        prop_assert_eq!(s.meet(a, a), a);
    }

    #[test]
    fn order_consistent_with_join_and_meet((s, es) in space_and_elems(2)) {
        let (a, b) = (es[0], es[1]);
        prop_assert_eq!(s.le(a, b), s.join(a, b) == b);
        prop_assert_eq!(s.le(a, b), s.meet(a, b) == a);
    }

    #[test]
    fn le_is_partial_order((s, es) in space_and_elems(3)) {
        let (a, b, c) = (es[0], es[1], es[2]);
        prop_assert!(s.le(a, a));
        if s.le(a, b) && s.le(b, a) {
            prop_assert_eq!(a, b);
        }
        if s.le(a, b) && s.le(b, c) {
            prop_assert!(s.le(a, c));
        }
    }

    #[test]
    fn bounds_are_extremal((s, es) in space_and_elems(1)) {
        let a = es[0];
        prop_assert!(s.le(s.bottom(), a));
        prop_assert!(s.le(a, s.top()));
    }

    #[test]
    fn join_is_least_upper_bound((s, es) in space_and_elems(3)) {
        let (a, b, ub) = (es[0], es[1], es[2]);
        let j = s.join(a, b);
        prop_assert!(s.le(a, j));
        prop_assert!(s.le(b, j));
        if s.le(a, ub) && s.le(b, ub) {
            prop_assert!(s.le(j, ub));
        }
    }

    #[test]
    fn meet_is_greatest_lower_bound((s, es) in space_and_elems(3)) {
        let (a, b, lb) = (es[0], es[1], es[2]);
        let m = s.meet(a, b);
        prop_assert!(s.le(m, a));
        prop_assert!(s.le(m, b));
        if s.le(lb, a) && s.le(lb, b) {
            prop_assert!(s.le(lb, m));
        }
    }

    #[test]
    fn render_parse_round_trip((s, es) in space_and_elems(1)) {
        let a = es[0];
        let text = s.render(a);
        let back = s.parse_set(&text).expect("rendered set parses");
        prop_assert_eq!(back, a);
    }

    #[test]
    fn not_q_characterization((s, es) in space_and_elems(1)) {
        // e ⊑ ¬q  ⇔  q's coordinate in e is at its bottom point.
        let e = es[0];
        for (id, decl) in s.iter() {
            let nq = s.not_q(id);
            let coord_bottom = match decl.polarity() {
                qual_lattice::Polarity::Positive => !e.has(&s, id),
                qual_lattice::Polarity::Negative => e.has(&s, id),
            };
            prop_assert_eq!(s.le(e, nq), coord_bottom);
        }
    }

    #[test]
    fn with_present_then_has((s, es) in space_and_elems(1)) {
        let e = es[0];
        for (id, _) in s.iter() {
            prop_assert!(s.with_present(e, id).has(&s, id));
            prop_assert!(!s.with_absent(e, id).has(&s, id));
        }
    }

    // -------------------------------------------------------------------
    // Word-parallel ops vs. the per-coordinate reference model. The
    // solver relies on one u64 AND/OR/subset-test computing every
    // qualifier space at once (Definition 2's product lattice); these
    // properties pin that the packed ops equal running each two-point
    // coordinate lattice independently and reassembling.
    // -------------------------------------------------------------------

    #[test]
    fn word_ops_match_per_coordinate_reference((s, es) in space_and_elems(2)) {
        let (a, b) = (es[0], es[1]);
        let mut join = 0u64;
        let mut meet = 0u64;
        let mut le = true;
        for i in 0..s.len() {
            // Coordinate i in isolation: a two-point lattice with
            // canonical order ⊥=0 < ⊤=1.
            let ai = a.bits() >> i & 1;
            let bi = b.bits() >> i & 1;
            join |= (ai | bi) << i;
            meet |= (ai & bi) << i;
            le &= ai <= bi;
        }
        prop_assert_eq!(s.join(a, b), QualSet::from_bits(join));
        prop_assert_eq!(s.meet(a, b), QualSet::from_bits(meet));
        prop_assert_eq!(s.le(a, b), le);
    }

    #[test]
    fn coordinates_do_not_interfere((s, es) in space_and_elems(2)) {
        // Perturbing one coordinate of an operand never changes any
        // *other* coordinate of a join or meet — the wall between
        // simultaneously-solved qualifier spaces.
        let (a, b) = (es[0], es[1]);
        for j in 0..s.len() {
            let a2 = QualSet::from_bits(a.bits() ^ (1 << j));
            for i in 0..s.len() {
                if i == j { continue; }
                let m = 1u64 << i;
                prop_assert_eq!(s.join(a, b).bits() & m, s.join(a2, b).bits() & m);
                prop_assert_eq!(s.meet(a, b).bits() & m, s.meet(a2, b).bits() & m);
            }
        }
    }

    #[test]
    fn presence_reads_through_polarity((s, es) in space_and_elems(1)) {
        // `has` is the polarity lens over the canonical bit: positive
        // qualifiers are present at ⊤, negative ones at ⊥.
        let a = es[0];
        for (id, decl) in s.iter() {
            let bit = a.bits() >> id.index() & 1 == 1;
            let expect = match decl.polarity() {
                qual_lattice::Polarity::Positive => bit,
                qual_lattice::Polarity::Negative => !bit,
            };
            prop_assert_eq!(a.has(&s, id), expect);
        }
    }
}
