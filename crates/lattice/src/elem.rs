//! [`QualSet`]: one element of the product qualifier lattice.

use crate::qualifier::{Polarity, QualId};
use crate::space::QualSpace;

/// An element of the qualifier lattice `L = L_{q1} × ⋯ × L_{qn}`.
///
/// Internally a `QualSet` is a canonical bitvector: bit `i` is 1 iff
/// qualifier `i`'s coordinate sits at the *top* of its two-point lattice
/// (i.e. a positive qualifier is present, or a negative qualifier is
/// absent). Under this canonicalization the product order is plain subset
/// order, join is bitwise OR and meet is bitwise AND, which is what makes
/// the inference engine fast.
///
/// Presence/absence of a named qualifier is interpreted through the
/// [`QualSpace`] (which knows each qualifier's polarity); see
/// [`QualSet::has`].
///
/// ```
/// use qual_lattice::QualSpace;
/// let s = QualSpace::figure2();
/// let a = s.parse_set("const").unwrap();
/// let b = s.parse_set("dynamic").unwrap();
/// let j = s.join(a, b);
/// assert_eq!(s.render(j), "const dynamic");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QualSet {
    bits: u64,
}

impl QualSet {
    /// Builds a `QualSet` directly from canonical bits.
    ///
    /// Callers outside this crate normally use [`QualSpace`] constructors
    /// ([`QualSpace::bottom`], [`QualSpace::parse_set`], …) instead.
    #[must_use]
    pub fn from_bits(bits: u64) -> QualSet {
        QualSet { bits }
    }

    /// The canonical bit representation.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Whether qualifier `id` is *present* in this element, under the
    /// polarity recorded in `space`.
    #[must_use]
    pub fn has(self, space: &QualSpace, id: QualId) -> bool {
        let bit = self.bits >> id.index() & 1 == 1;
        match space.decl(id).polarity() {
            Polarity::Positive => bit,
            Polarity::Negative => !bit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::QualSpace;

    #[test]
    fn has_respects_polarity() {
        let s = QualSpace::figure2();
        let c = s.id("const").unwrap();
        let nz = s.id("nonzero").unwrap();
        // bits = 0 (⊥): const absent (positive), nonzero present (negative).
        let bottom = QualSet::from_bits(0);
        assert!(!bottom.has(&s, c));
        assert!(bottom.has(&s, nz));
    }

    #[test]
    fn default_is_bottom_bits() {
        assert_eq!(QualSet::default().bits(), 0);
    }
}
