//! Qualifier declarations: names, polarities, and identifiers.

use std::fmt;

/// The subtyping direction a qualifier induces (Definition 1 of the paper).
///
/// A qualifier `q` is *positive* if `τ ≤ q τ` for every standard type `τ`
/// (values can always be promoted *into* the qualifier — C's `const`), and
/// *negative* if `q τ ≤ τ` (values can always be promoted *out of* the
/// qualifier — `nonzero`, `nonnull`).
///
/// ```
/// use qual_lattice::Polarity;
/// assert_ne!(Polarity::Positive, Polarity::Negative);
/// assert_eq!(Polarity::Positive.flip(), Polarity::Negative);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// `τ ≤ q τ`: moving *up* the two-point lattice adds the qualifier.
    Positive,
    /// `q τ ≤ τ`: moving *up* the two-point lattice removes the qualifier.
    Negative,
}

impl Polarity {
    /// Returns the opposite polarity.
    ///
    /// The paper notes positive and negative qualifiers are dual: a
    /// negative `q` can always be recast as a positive `¬q`.
    #[must_use]
    pub fn flip(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::Positive => f.write_str("positive"),
            Polarity::Negative => f.write_str("negative"),
        }
    }
}

/// A compact index identifying a declared qualifier within its
/// [`QualSpace`](crate::QualSpace).
///
/// `QualId`s are only meaningful relative to the space that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QualId(pub(crate) u8);

impl QualId {
    /// The position of this qualifier in its space's declaration order.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for QualId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A single user-declared qualifier: a name plus its [`Polarity`].
///
/// ```
/// use qual_lattice::{Polarity, QualDecl};
/// let q = QualDecl::new("const", Polarity::Positive);
/// assert_eq!(q.name(), "const");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QualDecl {
    name: String,
    polarity: Polarity,
}

impl QualDecl {
    /// Creates a declaration for qualifier `name` with the given polarity.
    pub fn new(name: impl Into<String>, polarity: Polarity) -> QualDecl {
        QualDecl {
            name: name.into(),
            polarity,
        }
    }

    /// Shorthand for a positive qualifier (`τ ≤ q τ`).
    pub fn positive(name: impl Into<String>) -> QualDecl {
        QualDecl::new(name, Polarity::Positive)
    }

    /// Shorthand for a negative qualifier (`q τ ≤ τ`).
    pub fn negative(name: impl Into<String>) -> QualDecl {
        QualDecl::new(name, Polarity::Negative)
    }

    /// The qualifier's source-level name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The qualifier's polarity.
    #[must_use]
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }
}

impl fmt::Display for QualDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.polarity, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_flip_is_involutive() {
        assert_eq!(Polarity::Positive.flip().flip(), Polarity::Positive);
        assert_eq!(Polarity::Negative.flip().flip(), Polarity::Negative);
    }

    #[test]
    fn decl_accessors() {
        let d = QualDecl::positive("const");
        assert_eq!(d.name(), "const");
        assert_eq!(d.polarity(), Polarity::Positive);
        let d = QualDecl::negative("nonzero");
        assert_eq!(d.polarity(), Polarity::Negative);
    }

    #[test]
    fn display_forms() {
        assert_eq!(QualDecl::positive("const").to_string(), "positive const");
        assert_eq!(QualId(3).to_string(), "q3");
        assert_eq!(Polarity::Negative.to_string(), "negative");
    }
}
