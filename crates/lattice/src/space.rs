//! [`QualSpace`]: the table of declared qualifiers that fixes the product
//! lattice `L = L_{q1} × ⋯ × L_{qn}` of Definition 2.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::elem::QualSet;
use crate::qualifier::{Polarity, QualDecl, QualId};

/// Maximum number of qualifiers in one space (one bit each in [`QualSet`]).
pub const MAX_QUALIFIERS: usize = 64;

/// Errors from building a [`QualSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The same qualifier name was declared twice.
    DuplicateName(String),
    /// More than [`MAX_QUALIFIERS`] qualifiers were declared.
    TooManyQualifiers(usize),
    /// A qualifier name was empty or contained whitespace.
    InvalidName(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DuplicateName(n) => write!(f, "duplicate qualifier name `{n}`"),
            SpaceError::TooManyQualifiers(n) => {
                write!(f, "{n} qualifiers declared, maximum is {MAX_QUALIFIERS}")
            }
            SpaceError::InvalidName(n) => write!(f, "invalid qualifier name `{n}`"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// Error from [`QualSpace::parse_set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQualSetError {
    name: String,
}

impl fmt::Display for ParseQualSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown qualifier `{}`", self.name)
    }
}

impl std::error::Error for ParseQualSetError {}

/// Incrementally builds a [`QualSpace`].
///
/// ```
/// use qual_lattice::{Polarity, QualSpaceBuilder};
/// let space = QualSpaceBuilder::new()
///     .positive("const")
///     .negative("nonzero")
///     .build()
///     .unwrap();
/// assert_eq!(space.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct QualSpaceBuilder {
    decls: Vec<QualDecl>,
}

impl QualSpaceBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> QualSpaceBuilder {
        QualSpaceBuilder::default()
    }

    /// Declares a qualifier.
    #[must_use]
    pub fn declare(mut self, decl: QualDecl) -> QualSpaceBuilder {
        self.decls.push(decl);
        self
    }

    /// Declares a positive qualifier named `name`.
    #[must_use]
    pub fn positive(self, name: impl Into<String>) -> QualSpaceBuilder {
        self.declare(QualDecl::positive(name))
    }

    /// Declares a negative qualifier named `name`.
    #[must_use]
    pub fn negative(self, name: impl Into<String>) -> QualSpaceBuilder {
        self.declare(QualDecl::negative(name))
    }

    /// Finalizes the space.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] on duplicate names, invalid names, or more
    /// than [`MAX_QUALIFIERS`] declarations.
    pub fn build(self) -> Result<QualSpace, SpaceError> {
        if self.decls.len() > MAX_QUALIFIERS {
            return Err(SpaceError::TooManyQualifiers(self.decls.len()));
        }
        let mut by_name = HashMap::with_capacity(self.decls.len());
        for (i, d) in self.decls.iter().enumerate() {
            if d.name().is_empty() || d.name().chars().any(char::is_whitespace) {
                return Err(SpaceError::InvalidName(d.name().to_owned()));
            }
            if by_name.insert(d.name().to_owned(), QualId(i as u8)).is_some() {
                return Err(SpaceError::DuplicateName(d.name().to_owned()));
            }
        }
        Ok(QualSpace {
            inner: Arc::new(SpaceInner {
                decls: self.decls,
                by_name,
            }),
        })
    }
}

#[derive(Debug)]
struct SpaceInner {
    decls: Vec<QualDecl>,
    by_name: HashMap<String, QualId>,
}

/// An immutable set of qualifier declarations defining a product lattice.
///
/// Cloning a `QualSpace` is cheap (it is reference-counted); every
/// analysis phase shares one space.
#[derive(Debug, Clone)]
pub struct QualSpace {
    inner: Arc<SpaceInner>,
}

impl PartialEq for QualSpace {
    fn eq(&self, other: &QualSpace) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.decls == other.inner.decls
    }
}

impl Eq for QualSpace {}

impl QualSpace {
    /// The number of declared qualifiers `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.decls.len()
    }

    /// Whether no qualifiers are declared (the lattice is trivial).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.decls.is_empty()
    }

    /// The total number of lattice elements, `2^n`.
    #[must_use]
    pub fn elem_count(&self) -> u128 {
        1u128 << self.len()
    }

    /// Looks a qualifier up by name.
    #[must_use]
    pub fn id(&self, name: &str) -> Option<QualId> {
        self.inner.by_name.get(name).copied()
    }

    /// The declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this space.
    #[must_use]
    pub fn decl(&self, id: QualId) -> &QualDecl {
        &self.inner.decls[id.index()]
    }

    /// Iterates over `(QualId, &QualDecl)` in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (QualId, &QualDecl)> {
        self.inner
            .decls
            .iter()
            .enumerate()
            .map(|(i, d)| (QualId(i as u8), d))
    }

    /// The bottom element `⊥` of the product lattice: every positive
    /// qualifier absent, every negative qualifier present.
    #[must_use]
    pub fn bottom(&self) -> QualSet {
        QualSet::from_bits(0)
    }

    /// The top element `⊤`: every positive qualifier present, every
    /// negative qualifier absent.
    #[must_use]
    pub fn top(&self) -> QualSet {
        if self.is_empty() {
            QualSet::from_bits(0)
        } else {
            QualSet::from_bits(u64::MAX >> (64 - self.len()))
        }
    }

    /// The paper's `¬qᵢ`: the largest lattice element in which qualifier
    /// `id`'s coordinate is at the *bottom* of its two-point lattice.
    ///
    /// For positive `q`, `¬q` is the greatest element *without* `q`; for
    /// negative `q`, it is the greatest element *with* `q`. Asserting
    /// `Q ⊑ ¬const` is how the `const` discipline forbids assignment
    /// through a const reference (§2.4).
    #[must_use]
    pub fn not_q(&self, id: QualId) -> QualSet {
        QualSet::from_bits(self.top().bits() & !(1u64 << id.index()))
    }

    /// The least element *containing* qualifier `id` (positive: `q`
    /// present and everything else at ⊥; negative: ⊥ itself, since ⊥
    /// already contains every negative qualifier).
    #[must_use]
    pub fn just(&self, id: QualId) -> QualSet {
        match self.decl(id).polarity() {
            Polarity::Positive => QualSet::from_bits(1u64 << id.index()),
            Polarity::Negative => self.bottom(),
        }
    }

    /// Builds the element whose *present* qualifiers are exactly `names`.
    ///
    /// Unmentioned positive qualifiers are absent and unmentioned negative
    /// qualifiers are absent (i.e. their coordinate sits at ⊤ — matching
    /// the paper's convention of writing only the qualifiers present).
    ///
    /// # Errors
    ///
    /// Returns an error if any name is not declared in this space.
    pub fn set_of<'a, I>(&self, names: I) -> Result<QualSet, ParseQualSetError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut bits = self.none().bits();
        for name in names {
            let id = self.id(name).ok_or_else(|| ParseQualSetError {
                name: name.to_owned(),
            })?;
            bits = self.with_present(QualSet::from_bits(bits), id).bits();
        }
        Ok(QualSet::from_bits(bits))
    }

    /// Parses a whitespace-separated qualifier list, e.g. `"const nonzero"`.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unknown qualifier.
    pub fn parse_set(&self, text: &str) -> Result<QualSet, ParseQualSetError> {
        self.set_of(text.split_whitespace())
    }

    /// The element with *no* qualifier present: positives absent (bit 0),
    /// negatives absent (bit 1 — their top coordinate).
    ///
    /// This is the qualifier set of an unannotated type in source syntax.
    /// Note it is *not* `⊥`: `⊥` has every negative qualifier present.
    #[must_use]
    pub fn none(&self) -> QualSet {
        let mut bits = 0u64;
        for (id, d) in self.iter() {
            if d.polarity() == Polarity::Negative {
                bits |= 1 << id.index();
            }
        }
        QualSet::from_bits(bits)
    }

    /// Returns `set` with qualifier `id` made present.
    #[must_use]
    pub fn with_present(&self, set: QualSet, id: QualId) -> QualSet {
        let bit = 1u64 << id.index();
        match self.decl(id).polarity() {
            Polarity::Positive => QualSet::from_bits(set.bits() | bit),
            Polarity::Negative => QualSet::from_bits(set.bits() & !bit),
        }
    }

    /// Returns `set` with qualifier `id` made absent.
    #[must_use]
    pub fn with_absent(&self, set: QualSet, id: QualId) -> QualSet {
        let bit = 1u64 << id.index();
        match self.decl(id).polarity() {
            Polarity::Positive => QualSet::from_bits(set.bits() & !bit),
            Polarity::Negative => QualSet::from_bits(set.bits() | bit),
        }
    }

    /// Lattice order `a ⊑ b` (product of the per-qualifier orders).
    #[must_use]
    pub fn le(&self, a: QualSet, b: QualSet) -> bool {
        a.bits() & !b.bits() == 0
    }

    /// Lattice join `a ⊔ b`.
    #[must_use]
    pub fn join(&self, a: QualSet, b: QualSet) -> QualSet {
        QualSet::from_bits(a.bits() | b.bits())
    }

    /// Lattice meet `a ⊓ b`.
    #[must_use]
    pub fn meet(&self, a: QualSet, b: QualSet) -> QualSet {
        QualSet::from_bits(a.bits() & b.bits())
    }

    /// Renders `set` as the space-separated names of its *present*
    /// qualifiers, in declaration order (empty string for no qualifiers).
    #[must_use]
    pub fn render(&self, set: QualSet) -> String {
        let mut out = String::new();
        for (id, d) in self.iter() {
            if set.has(self, id) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(d.name());
            }
        }
        out
    }

    /// Enumerates every element of the lattice (use only for small spaces;
    /// there are `2^n` of them).
    ///
    /// # Panics
    ///
    /// Panics for spaces with 32 or more qualifiers — enumerating 2³²⁺
    /// elements is never what you want, and the shift would overflow at
    /// 64.
    pub fn elements(&self) -> impl Iterator<Item = QualSet> {
        let n = self.len();
        assert!(
            n < 32,
            "QualSpace::elements() enumerates 2^n lattice points;              refusing for n = {n}"
        );
        (0u64..(1u64 << n)).map(QualSet::from_bits)
    }

    /// The standard one-qualifier space for C's `const`.
    #[must_use]
    pub fn const_only() -> QualSpace {
        QualSpaceBuilder::new()
            .positive("const")
            .build()
            .expect("static space is valid")
    }

    /// The three-qualifier space of the paper's Figure 2:
    /// positive `const` and `dynamic`, negative `nonzero`.
    #[must_use]
    pub fn figure2() -> QualSpace {
        QualSpaceBuilder::new()
            .positive("const")
            .positive("dynamic")
            .negative("nonzero")
            .build()
            .expect("static space is valid")
    }

    /// Binding-time analysis: positive `dynamic` (with `static` as its
    /// absence, per the paper's duality remark).
    #[must_use]
    pub fn binding_time() -> QualSpace {
        QualSpaceBuilder::new()
            .positive("dynamic")
            .build()
            .expect("static space is valid")
    }

    /// A security-style space: positive `tainted`, negative `untainted`.
    #[must_use]
    pub fn taint() -> QualSpace {
        QualSpaceBuilder::new()
            .positive("tainted")
            .build()
            .expect("static space is valid")
    }

    /// The §2.3 data-structure example: negative `sorted`.
    #[must_use]
    pub fn sorted() -> QualSpace {
        QualSpaceBuilder::new()
            .negative("sorted")
            .build()
            .expect("static space is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_detects_duplicates() {
        let err = QualSpaceBuilder::new()
            .positive("const")
            .negative("const")
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::DuplicateName("const".into()));
    }

    #[test]
    fn builder_rejects_bad_names() {
        let err = QualSpaceBuilder::new().positive("a b").build().unwrap_err();
        assert_eq!(err, SpaceError::InvalidName("a b".into()));
        let err = QualSpaceBuilder::new().positive("").build().unwrap_err();
        assert_eq!(err, SpaceError::InvalidName(String::new()));
    }

    #[test]
    fn builder_rejects_too_many() {
        let mut b = QualSpaceBuilder::new();
        for i in 0..65 {
            b = b.positive(format!("q{i}"));
        }
        assert!(matches!(
            b.build().unwrap_err(),
            SpaceError::TooManyQualifiers(65)
        ));
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn elements_refuses_huge_spaces() {
        let mut b = QualSpaceBuilder::new();
        for i in 0..40 {
            b = b.positive(format!("q{i}"));
        }
        let s = b.build().unwrap();
        let _ = s.elements();
    }

    #[test]
    fn empty_space_is_trivial() {
        let s = QualSpaceBuilder::new().build().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.elem_count(), 1);
        assert_eq!(s.top(), s.bottom());
        assert_eq!(s.elements().count(), 1);
        assert_eq!(s.render(s.top()), "");
    }

    #[test]
    fn sixty_four_qualifiers_ok() {
        let mut b = QualSpaceBuilder::new();
        for i in 0..64 {
            b = b.positive(format!("q{i}"));
        }
        let s = b.build().unwrap();
        assert_eq!(s.len(), 64);
        assert_eq!(s.top().bits(), u64::MAX);
    }

    #[test]
    fn lookup_by_name() {
        let s = QualSpace::figure2();
        assert_eq!(s.id("const"), Some(QualId(0)));
        assert_eq!(s.id("dynamic"), Some(QualId(1)));
        assert_eq!(s.id("nonzero"), Some(QualId(2)));
        assert_eq!(s.id("bogus"), None);
        assert_eq!(s.decl(QualId(2)).polarity(), Polarity::Negative);
    }

    #[test]
    fn figure2_has_eight_elements() {
        let s = QualSpace::figure2();
        assert_eq!(s.elem_count(), 8);
        assert_eq!(s.elements().count(), 8);
    }

    #[test]
    fn bottom_contains_negatives_top_contains_positives() {
        let s = QualSpace::figure2();
        let nz = s.id("nonzero").unwrap();
        let c = s.id("const").unwrap();
        let d = s.id("dynamic").unwrap();
        assert!(s.bottom().has(&s, nz));
        assert!(!s.bottom().has(&s, c));
        assert!(s.top().has(&s, c));
        assert!(s.top().has(&s, d));
        assert!(!s.top().has(&s, nz));
    }

    #[test]
    fn none_differs_from_bottom_when_negatives_exist() {
        let s = QualSpace::figure2();
        assert_ne!(s.none(), s.bottom());
        let c = QualSpace::const_only();
        assert_eq!(c.none(), c.bottom());
    }

    #[test]
    fn not_q_is_upper_bound_excluding_q() {
        let s = QualSpace::figure2();
        let c = s.id("const").unwrap();
        let nc = s.not_q(c);
        assert!(!nc.has(&s, c));
        // Everything without const present is ⊑ ¬const.
        for e in s.elements() {
            assert_eq!(s.le(e, nc), !e.has(&s, c));
        }
        // ¬nonzero: greatest element *with* nonzero present.
        let nz = s.id("nonzero").unwrap();
        let nnz = s.not_q(nz);
        assert!(nnz.has(&s, nz));
        for e in s.elements() {
            assert_eq!(s.le(e, nnz), e.has(&s, nz));
        }
    }

    #[test]
    fn parse_and_render_round_trip() {
        let s = QualSpace::figure2();
        let e = s.parse_set("const nonzero").unwrap();
        assert_eq!(s.render(e), "const nonzero");
        let e = s.parse_set("").unwrap();
        assert_eq!(s.render(e), "");
        assert_eq!(e, s.none());
        let err = s.parse_set("const bogus").unwrap_err();
        assert_eq!(err.to_string(), "unknown qualifier `bogus`");
    }

    #[test]
    fn moving_up_adds_positive_or_removes_negative() {
        // The caption of Figure 2: "moving up the lattice adds positive
        // qualifiers or removes negative qualifiers."
        let s = QualSpace::figure2();
        let c = s.id("const").unwrap();
        let nz = s.id("nonzero").unwrap();
        let x = s.none();
        let with_c = s.with_present(x, c);
        assert!(s.le(x, with_c));
        let with_nz = s.with_present(x, nz);
        assert!(s.le(with_nz, x));
    }

    #[test]
    fn figure2_specific_orderings() {
        // Spot-check the Hasse diagram of Figure 2.
        let s = QualSpace::figure2();
        let nonzero = s.parse_set("nonzero").unwrap();
        let empty = s.parse_set("").unwrap();
        let konst = s.parse_set("const").unwrap();
        let dynamic = s.parse_set("dynamic").unwrap();
        let const_nonzero = s.parse_set("const nonzero").unwrap();
        let const_dynamic = s.parse_set("const dynamic").unwrap();

        assert!(s.le(nonzero, empty));
        assert!(s.le(nonzero, const_nonzero));
        assert!(s.le(const_nonzero, konst));
        assert!(s.le(empty, konst));
        assert!(s.le(empty, dynamic));
        assert!(s.le(konst, const_dynamic));
        assert!(s.le(dynamic, const_dynamic));
        assert!(!s.le(konst, dynamic));
        assert!(!s.le(dynamic, konst));
        assert!(!s.le(empty, nonzero));
        assert_eq!(s.bottom(), nonzero);
        assert_eq!(s.top(), const_dynamic);
    }

    #[test]
    fn spaces_compare_structurally() {
        assert_eq!(QualSpace::figure2(), QualSpace::figure2());
        assert_ne!(QualSpace::figure2(), QualSpace::const_only());
    }
}
