//! Qualifier lattices for the type-qualifier framework of
//! *A Theory of Type Qualifiers* (Foster, Fähndrich, Aiken; PLDI 1999).
//!
//! A *type qualifier* `q` introduces a simple form of subtyping: for every
//! standard type `τ`, either `τ ≤ q τ` (`q` is **positive**, like C's
//! `const`) or `q τ ≤ τ` (`q` is **negative**, like lclint's `nonnull` or
//! the paper's `nonzero`). Each qualifier induces a two-point lattice, and
//! a set of `n` qualifiers induces the product lattice
//! `L = L_{q1} × ⋯ × L_{qn}` (Definition 2 of the paper).
//!
//! This crate provides:
//!
//! * [`Polarity`], [`QualDecl`], [`QualId`] — qualifier declarations;
//! * [`QualSpace`] — an immutable table of declared qualifiers defining
//!   the product lattice;
//! * [`QualSet`] — one element of the product lattice, with `⊑`, `⊔`, `⊓`,
//!   `⊥`, `⊤`, and the paper's `¬qᵢ` operation;
//! * ready-made spaces used throughout the paper's examples
//!   ([`QualSpace::figure2`], [`QualSpace::const_only`],
//!   [`QualSpace::binding_time`], [`QualSpace::taint`]).
//!
//! # Example
//!
//! The lattice of Figure 2 (positive `const` and `dynamic`, negative
//! `nonzero`):
//!
//! ```
//! use qual_lattice::QualSpace;
//!
//! let space = QualSpace::figure2();
//! let konst = space.id("const").unwrap();
//! let nonzero = space.id("nonzero").unwrap();
//!
//! let bottom = space.bottom();          // nonzero (negative present at ⊥)
//! assert!(bottom.has(&space, nonzero));
//! assert!(!bottom.has(&space, konst));
//!
//! let top = space.top();                // const dynamic, not nonzero
//! assert!(space.le(bottom, top));
//! assert_eq!(space.elem_count(), 8);    // 2³ points, as drawn in Figure 2
//! ```

mod elem;
mod qualifier;
mod space;

pub use elem::QualSet;
pub use qualifier::{Polarity, QualDecl, QualId};
pub use space::{ParseQualSetError, QualSpace, QualSpaceBuilder, SpaceError, MAX_QUALIFIERS};
