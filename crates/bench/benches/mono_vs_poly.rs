//! The paper's overhead claim: "the polymorphic inference takes at most
//! 3 times longer than the monomorphic inference" (§4.4). Measures both
//! modes on each (shrunken) Table-1 benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qual_cgen::table1_profiles;
use qual_constinfer::{run, Mode};

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mono_vs_poly");
    group.sample_size(10);
    for p in table1_profiles() {
        // Shrink the big ones so the whole suite stays fast; composition
        // (and therefore the mono/poly work ratio) is preserved.
        let p = p.scaled(p.lines.min(2_000));
        let src = qual_cgen::generate(&p);
        let prog = qual_cfront::parse(&src).expect("parses");
        let sema = qual_cfront::sema::analyze(&prog).expect("resolves");
        let space = qual_lattice::QualSpace::const_only();
        group.bench_with_input(BenchmarkId::new("mono", p.name), &p, |b, _| {
            b.iter(|| run(&prog, &sema, &space, Mode::Monomorphic));
        });
        group.bench_with_input(BenchmarkId::new("poly", p.name), &p, |b, _| {
            b.iter(|| run(&prog, &sema, &space, Mode::Polymorphic));
        });
        group.bench_with_input(BenchmarkId::new("polyrec", p.name), &p, |b, _| {
            b.iter(|| run(&prog, &sema, &space, Mode::PolymorphicRecursive));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
