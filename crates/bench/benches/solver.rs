//! Micro-benchmarks of the atomic-constraint solver (§3.1): the paper
//! cites Henglein–Rehof linear-time solvability for a fixed qualifier
//! set, and predicted a specialized engine would beat its generic
//! set-constraint toolkit. This measures solve time against constraint
//! count on chain, tree, and random-graph systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qual_lattice::QualSpace;
use qual_solve::{ConstraintSet, QVar, Qual, VarSupply};

fn chain_system(n: usize, space: &QualSpace) -> (ConstraintSet, VarSupply) {
    let mut vars = VarSupply::new();
    let mut cs = ConstraintSet::new();
    let konst = space.top();
    let first = vars.fresh();
    cs.add(Qual::Const(konst), first);
    let mut prev = first;
    for _ in 1..n {
        let v = vars.fresh();
        cs.add(prev, v);
        prev = v;
    }
    (cs, vars)
}

fn random_system(n: usize, space: &QualSpace) -> (ConstraintSet, VarSupply) {
    // Deterministic pseudo-random edges without pulling in rand here.
    let mut vars = VarSupply::new();
    for _ in 0..n {
        vars.fresh();
    }
    let mut cs = ConstraintSet::new();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as usize
    };
    for _ in 0..(n * 2) {
        let a = QVar::from_index(next() % n);
        let b = QVar::from_index(next() % n);
        cs.add(a, b);
    }
    for _ in 0..(n / 10).max(1) {
        let v = QVar::from_index(next() % n);
        cs.add(Qual::Const(space.top()), v);
    }
    (cs, vars)
}

fn bench_solver(c: &mut Criterion) {
    let space = QualSpace::figure2();
    let mut group = c.benchmark_group("solver");
    for n in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        let (chain, chain_vars) = chain_system(n, &space);
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, _| {
            b.iter(|| chain.solve(&space, &chain_vars).expect("satisfiable"));
        });
        let (rnd, rnd_vars) = random_system(n, &space);
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, _| {
            b.iter(|| rnd.solve(&space, &rnd_vars).expect("satisfiable"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
