//! Framework-cost bench: qualified inference over core-language programs
//! of increasing size (phase A unification + phase B constraint
//! generation + solving). The paper's framework claim is that adding
//! qualifiers to a type system costs little; this measures that overhead
//! directly by comparing standard inference alone against the full
//! qualified pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qual_lambda::rules::NonzeroRules;
use qual_lambda::unify::infer_standard;
use qual_lambda::{infer_expr, parse};
use qual_lattice::QualSpace;

/// Builds a program that scales in *width*: a bounded preamble of
/// let-bound refs, then an additive chain of `n` terms reading and
/// writing them (additive chains parse iteratively, so program size is
/// independent of the parser's nesting limit).
fn program(n: usize) -> String {
    const VARS: usize = 32;
    let mut src = String::new();
    for i in 0..VARS {
        src.push_str(&format!(
            "let x{i} = ref ({} + {i}) in ",
            if i % 3 == 0 { "{nonzero} 1" } else { "2" },
        ));
    }
    src.push_str("let total = ");
    for i in 0..n {
        if i > 0 {
            src.push_str(" + ");
        }
        src.push_str(&format!("!x{} * {}", i % VARS, i % 7 + 1));
    }
    src.push_str(" in (total)|{top}");
    src.push_str(" ni");
    for _ in 0..VARS {
        src.push_str(" ni");
    }
    src
}

fn bench_lambda(c: &mut Criterion) {
    let space = QualSpace::figure2();
    let mut group = c.benchmark_group("lambda_inference");
    for n in [50usize, 200, 800] {
        let src = program(n);
        let expr = parse(&src, &space).expect("generated program parses");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("standard_only", n), &n, |b, _| {
            b.iter(|| infer_standard(&expr).expect("well typed"));
        });
        group.bench_with_input(BenchmarkId::new("qualified", n), &n, |b, _| {
            b.iter(|| infer_expr(&expr, &space, &NonzeroRules).expect("well typed"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lambda);
criterion_main!(benches);
