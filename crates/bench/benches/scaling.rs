//! The paper's scaling claim: "the inference scales roughly linearly
//! with the program size" (§4.4). Sweeps generated program size and
//! measures monomorphic inference end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qual_cgen::table1_profiles;
use qual_constinfer::{run, Mode};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_scaling");
    group.sample_size(10);
    let base = &table1_profiles()[2]; // m4's composition
    for lines in [500usize, 1_000, 2_000, 4_000] {
        let src = qual_cgen::generate(&base.scaled(lines));
        let prog = qual_cfront::parse(&src).expect("parses");
        let sema = qual_cfront::sema::analyze(&prog).expect("resolves");
        let space = qual_lattice::QualSpace::const_only();
        group.throughput(Throughput::Elements(lines as u64));
        group.bench_with_input(BenchmarkId::new("mono", lines), &lines, |b, _| {
            b.iter(|| run(&prog, &sema, &space, Mode::Monomorphic));
        });
        group.bench_with_input(BenchmarkId::new("poly", lines), &lines, |b, _| {
            b.iter(|| run(&prog, &sema, &space, Mode::Polymorphic));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
