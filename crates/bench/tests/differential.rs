//! The cross-mode differential oracle: hundreds of cgen-seeded programs
//! pushed through all three analysis modes, every solution certified by
//! the independent verifier, and the modes cross-checked against each
//! other.
//!
//! The invariants (none of which the solver itself enforces — that is
//! the point of an oracle):
//!
//! * **Determinism** — the same `Profile` seed yields byte-identical C
//!   source across two `generate` calls, and re-analyzing the same
//!   source yields identical counts (no iteration-order leakage).
//! * **Certification** — every mode's solution passes
//!   [`qual_solve::verify_solution`] against the full constraint set.
//! * **Declared recovery** — a position declared `const` in the source
//!   is always inferred const-able, in every mode.
//! * **Mode agreement** — polymorphism only adds const-able positions:
//!   the mono const set is contained in the poly and polyrec sets, and
//!   all modes agree on the interesting-position universe.
//!
//! Case count defaults to 200 and is tunable via `QUAL_ORACLE_CASES`
//! (CI pins the seed via `PROPTEST_SEED`, so runs are reproducible).

use std::collections::BTreeSet;

use proptest::prelude::*;
use qual_cgen::table1_profiles;
use qual_constinfer::{analyze_source, ConstResult, Mode};
use qual_solve::verify_solution;

fn cases() -> u32 {
    std::env::var("QUAL_ORACLE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// The set of const-able positions, keyed stably by (function, param,
/// pointer level).
fn const_set(r: &ConstResult) -> BTreeSet<(String, Option<usize>, usize)> {
    r.positions
        .iter()
        .filter(|p| p.can_be_const())
        .map(|p| (p.function.clone(), p.param, p.level))
        .collect()
}

fn declared_set(r: &ConstResult) -> BTreeSet<(String, Option<usize>, usize)> {
    r.positions
        .iter()
        .filter(|p| p.declared)
        .map(|p| (p.function.clone(), p.param, p.level))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn modes_agree_and_solutions_certify(
        seed in any::<u64>(),
        base in 0usize..6,
        lines in 80usize..200,
    ) {
        let mut profile = table1_profiles()[base].scaled(lines);
        profile.seed = seed;

        // Determinism: the oracle is meaningless if the generator is not
        // reproducible.
        let src = qual_cgen::generate(&profile);
        prop_assert_eq!(
            &src,
            &qual_cgen::generate(&profile),
            "same profile seed must generate byte-identical source"
        );

        let mut results = Vec::new();
        for mode in [
            Mode::Monomorphic,
            Mode::Polymorphic,
            Mode::PolymorphicRecursive,
        ] {
            let r = analyze_source(&src, mode);
            prop_assert!(r.is_ok(), "{mode:?}: generated program must analyze");
            let r = r.unwrap();

            // Certification: the mode's solution must satisfy every
            // constraint under the independent checker.
            let a = &r.analysis;
            prop_assert!(a.solution.is_ok(), "{mode:?}: system must be satisfiable");
            let verdict = verify_solution(
                &a.space,
                a.constraints.constraints(),
                a.solution.as_ref().unwrap(),
            );
            prop_assert!(
                verdict.is_ok(),
                "{mode:?}: solution failed certification: {:?}",
                verdict.unwrap_err()
            );

            // Declared consts are always recovered.
            let declared = declared_set(&r);
            let can = const_set(&r);
            prop_assert!(
                declared.is_subset(&can),
                "{mode:?}: declared consts lost: {:?}",
                declared.difference(&can).collect::<Vec<_>>()
            );
            results.push((mode, r));
        }

        // Mode agreement: every mode sees the same position universe,
        // and polymorphism only ever adds const-able positions.
        let (_, mono) = &results[0];
        for (mode, other) in &results[1..] {
            prop_assert_eq!(
                mono.counts.total, other.counts.total,
                "{:?}: interesting-position universe changed", mode
            );
            let mono_can = const_set(mono);
            let other_can = const_set(other);
            prop_assert!(
                mono_can.is_subset(&other_can),
                "{:?} lost const positions mono found: {:?}",
                mode,
                mono_can.difference(&other_can).collect::<Vec<_>>()
            );
        }

        // Stability: a second run over the same source reproduces the
        // counts exactly (guards against iteration-order nondeterminism
        // anywhere in the pipeline).
        for (mode, first) in &results {
            let again = analyze_source(&src, *mode).unwrap();
            prop_assert_eq!(
                first.counts, again.counts,
                "{:?}: counts unstable across two runs", mode
            );
        }
    }
}
