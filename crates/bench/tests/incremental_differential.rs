//! The incremental-driver differential oracle: cgen-seeded programs
//! analyzed four ways — the classic serial engine, the incremental
//! driver with 1 worker, with 4 workers, and twice against a persistent
//! cache (cold then warm) — and the results cross-checked.
//!
//! The invariants:
//!
//! * **Serial agreement** — the incremental driver reports the same
//!   counts, the same const-able position set, and the same declared
//!   set as the serial engine, in every mode.
//! * **Schedule independence** — 1 worker and 4 workers produce
//!   *byte-identical* outcomes: counts, per-position classes in order,
//!   rendered diagnostics, merged constraint count.
//! * **Warm-cache identity** — a rerun against a freshly populated
//!   cache re-solves **zero** units (every unit is a verified cache
//!   hit) and is byte-identical to the cold run.
//! * **Metrics non-perturbation and determinism** — every incremental
//!   run here is collected under `qual_obs::scoped`, so the whole
//!   oracle doubles as a metrics-on vs. metrics-off differential
//!   (the serial engine runs uncollected); additionally the metrics
//!   document's analysis fingerprint (the document modulo timing and
//!   operational fields) must be byte-identical across 1 worker, 4
//!   workers, cold cache, and warm cache.
//!
//! Case count defaults to 40 and is tunable via
//! `QUAL_INCR_ORACLE_CASES` (CI pins `PROPTEST_SEED`).

use std::collections::BTreeSet;
use std::path::PathBuf;

use proptest::prelude::*;
use qual_cgen::table1_profiles;
use qual_constinfer::{analyze_source, Mode, Position};
use qual_incr::{analyze_source_incremental, IncrConfig, IncrOutcome};

fn cases() -> u32 {
    std::env::var("QUAL_INCR_ORACLE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

type PosKey = (String, Option<usize>, usize);

fn const_set(ps: &[Position]) -> BTreeSet<PosKey> {
    ps.iter()
        .filter(|p| p.can_be_const())
        .map(|p| (p.function.clone(), p.param, p.level))
        .collect()
}

fn declared_set(ps: &[Position]) -> BTreeSet<PosKey> {
    ps.iter()
        .filter(|p| p.declared)
        .map(|p| (p.function.clone(), p.param, p.level))
        .collect()
}

/// Everything that must be byte-identical across schedules and cache
/// states.
fn fingerprint(src: &str, out: &IncrOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "counts: {:?}", out.counts);
    let _ = writeln!(s, "constraints: {}", out.stats.constraints);
    for p in &out.positions {
        let _ = writeln!(
            s,
            "{} {:?} {} {} {:?}",
            p.function, p.param, p.level, p.declared, p.class
        );
    }
    for d in &out.skipped {
        s.push_str(&d.render(Some(src)));
    }
    s
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "qual-incr-oracle-{}-{tag}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn incremental_matches_serial_and_itself(
        seed in any::<u64>(),
        base in 0usize..6,
        lines in 80usize..160,
    ) {
        let mut profile = table1_profiles()[base].scaled(lines);
        profile.seed = seed;
        let src = qual_cgen::generate(&profile);

        for mode in [
            Mode::Monomorphic,
            Mode::Polymorphic,
            Mode::PolymorphicRecursive,
        ] {
            let serial = analyze_source(&src, mode);
            prop_assert!(serial.is_ok(), "{mode:?}: serial must analyze");
            let serial = serial.unwrap();

            // Every run is collected under `qual_obs::scoped`, so the
            // serial-agreement checks below double as a metrics-on vs.
            // metrics-off differential (the serial engine above ran
            // uncollected). The returned fingerprint is the metrics
            // document modulo timing/operational fields.
            let run = |jobs: usize, cache: Option<PathBuf>| {
                let (out, report) = qual_obs::scoped(|| {
                    analyze_source_incremental(
                        &src,
                        &IncrConfig {
                            mode,
                            jobs,
                            cache_dir: cache,
                            ..IncrConfig::default()
                        },
                    )
                });
                let fp = qual_obs::analysis_fingerprint(
                    &report.to_json("oracle", "any"),
                );
                (out, fp)
            };

            // Serial agreement: counts and position sets.
            let (one, one_fp) = run(1, None);
            prop_assert!(
                one.skipped.is_empty(),
                "{mode:?}: incremental run has diagnostics: {:?}",
                one.skipped
            );
            let counts = one.counts.expect("clean run has counts");
            prop_assert_eq!(counts.total, serial.counts.total, "{:?}", mode);
            prop_assert_eq!(counts.declared, serial.counts.declared, "{:?}", mode);
            prop_assert_eq!(counts.inferred, serial.counts.inferred, "{:?}", mode);
            prop_assert_eq!(
                const_set(&one.positions),
                const_set(&serial.positions),
                "{:?}: const-able position sets differ from serial",
                mode
            );
            prop_assert_eq!(
                declared_set(&one.positions),
                declared_set(&serial.positions),
                "{:?}: declared position sets differ from serial",
                mode
            );

            // Schedule independence: byte-identical at 4 workers —
            // both the analysis outcome and the metrics document
            // (modulo timings).
            let (four, four_fp) = run(4, None);
            prop_assert_eq!(
                fingerprint(&src, &one),
                fingerprint(&src, &four),
                "{:?}: 4 workers diverged from 1 worker",
                mode
            );
            prop_assert_eq!(
                &one_fp,
                &four_fp,
                "{:?}: metrics fingerprint diverged between 1 and 4 workers",
                mode
            );

            // Warm-cache identity: populate, rerun, compare.
            let dir = scratch_dir(&format!("{seed}-{base}-{lines}-{mode:?}"));
            let _ = std::fs::remove_dir_all(&dir);
            let (cold, cold_fp) = run(1, Some(dir.clone()));
            prop_assert_eq!(cold.stats.reused, 0, "{:?}: dir must start cold", mode);
            let (warm, warm_fp) = run(4, Some(dir.clone()));
            prop_assert_eq!(
                warm.stats.analyzed, 0,
                "{:?}: warm rerun re-solved {} of {} unit(s)",
                mode, warm.stats.analyzed, warm.stats.units
            );
            prop_assert_eq!(warm.stats.reused, warm.stats.units, "{:?}", mode);
            prop_assert!(
                warm.cache_diags.is_empty(),
                "{mode:?}: warm rerun reported cache trouble: {:?}",
                warm.cache_diags
            );
            prop_assert_eq!(
                fingerprint(&src, &one),
                fingerprint(&src, &warm),
                "{:?}: warm cache diverged from cold",
                mode
            );
            // The metrics document's analysis view is cache-blind: a
            // unit reconstituted from the cache carries the same
            // analysis counters as one solved fresh.
            prop_assert_eq!(
                &cold_fp,
                &warm_fp,
                "{:?}: metrics fingerprint diverged between cold and warm cache",
                mode
            );
            prop_assert_eq!(
                &one_fp,
                &cold_fp,
                "{:?}: metrics fingerprint diverged between cacheless and cold-cache runs",
                mode
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

// ---------------------------------------------------------------------------
// The qualifier-set matrix: the same invariants per `--qual` set. CI
// fans one leg per set via QUAL_ORACLE_QUALS; locally all four sets
// run in sequence.
// ---------------------------------------------------------------------------

/// The `--qual` sets the matrix certifies: the default, a positive +
/// negative pair, taint alone, and all four spaces at once.
const QUAL_SETS: &[&str] = &[
    "const",
    "const,nonnull",
    "tainted",
    "const,nonnull,tainted,linear",
];

fn qual_cases() -> u32 {
    std::env::var("QUAL_QUAL_ORACLE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// The per-set fingerprint adds the per-qualifier tallies to the
/// classic one — those must be schedule- and cache-independent too.
fn qual_fingerprint(src: &str, out: &IncrOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = fingerprint(src, out);
    for qc in &out.qual_counts {
        let _ = writeln!(s, "qual {} {} {}", qc.name, qc.may, qc.must);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(qual_cases()))]

    #[test]
    fn qualifier_sets_match_serial_and_themselves(
        seed in any::<u64>(),
        base in 0usize..6,
        lines in 80usize..160,
    ) {
        let mut profile = table1_profiles()[base].scaled(lines);
        profile.seed = seed;
        let src = qual_cgen::generate(&profile);
        let pinned = std::env::var("QUAL_ORACLE_QUALS").ok();
        let sets: Vec<&str> = match &pinned {
            Some(one) => vec![one.as_str()],
            None => QUAL_SETS.to_vec(),
        };

        for quals in sets {
            let space = qual_constinfer::space_for(quals).expect("known sets");
            let mode = Mode::Polymorphic;

            // The serial engine over the same space is the ground
            // truth for counts and per-qualifier tallies.
            let serial = qual_constinfer::analyze_source_with_options_in(
                &src,
                &space,
                mode,
                qual_constinfer::Options::default(),
                qual_constinfer::Budgets::default(),
            );
            prop_assert!(
                serial.skipped.is_empty(),
                "[{quals}] serial run has diagnostics: {:?}",
                serial.skipped
            );
            let serial = serial.result.expect("clean serial run");

            let run = |jobs: usize, cache: Option<PathBuf>| {
                analyze_source_incremental(
                    &src,
                    &IncrConfig {
                        mode,
                        jobs,
                        cache_dir: cache,
                        space: space.clone(),
                        ..IncrConfig::default()
                    },
                )
            };

            // Serial agreement, including every qualifier column.
            let one = run(1, None);
            prop_assert!(one.skipped.is_empty(), "[{quals}] {:?}", one.skipped);
            let counts = one.counts.expect("clean run has counts");
            prop_assert_eq!(counts, serial.counts, "[{}]", quals);
            prop_assert_eq!(
                &one.qual_counts,
                &serial.qual_counts,
                "[{}] per-qualifier tallies differ from serial",
                quals
            );
            prop_assert_eq!(
                const_set(&one.positions),
                const_set(&serial.positions),
                "[{}]",
                quals
            );

            // Schedule independence at this set.
            let four = run(4, None);
            prop_assert_eq!(
                qual_fingerprint(&src, &one),
                qual_fingerprint(&src, &four),
                "[{}] 4 workers diverged from 1 worker",
                quals
            );

            // Warm-cache identity at this set: zero re-solves,
            // byte-identical output.
            let dir = scratch_dir(&format!(
                "{seed}-{base}-{lines}-{}",
                quals.replace(',', "+")
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let cold = run(1, Some(dir.clone()));
            prop_assert_eq!(cold.stats.reused, 0, "[{}] dir must start cold", quals);
            let warm = run(4, Some(dir.clone()));
            prop_assert_eq!(
                warm.stats.analyzed, 0,
                "[{}] warm rerun re-solved {} of {} unit(s)",
                quals, warm.stats.analyzed, warm.stats.units
            );
            prop_assert_eq!(
                qual_fingerprint(&src, &one),
                qual_fingerprint(&src, &warm),
                "[{}] warm cache diverged from cold",
                quals
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Differing `--qual` sets must never alias in the summary cache:
    /// a cache populated under one set is entirely cold for another
    /// (the space digest is part of every unit key), and reusing the
    /// directory never corrupts either set's results.
    #[test]
    fn qualifier_sets_never_alias_in_the_cache(
        seed in any::<u64>(),
        lines in 80usize..140,
    ) {
        let mut profile = table1_profiles()[0].scaled(lines);
        profile.seed = seed;
        let src = qual_cgen::generate(&profile);
        let dir = scratch_dir(&format!("alias-{seed}-{lines}"));
        let _ = std::fs::remove_dir_all(&dir);

        let run = |quals: &str| {
            let space = qual_constinfer::space_for(quals).expect("known sets");
            analyze_source_incremental(
                &src,
                &IncrConfig {
                    jobs: 1,
                    cache_dir: Some(dir.clone()),
                    space,
                    ..IncrConfig::default()
                },
            )
        };

        let a = run("const");
        prop_assert_eq!(a.stats.reused, 0);
        // A different set sees a cold cache — not one hit may alias.
        let b = run("const,nonnull,tainted,linear");
        prop_assert_eq!(
            b.stats.reused, 0,
            "four-space run reused {} const-only summaries",
            b.stats.reused
        );
        prop_assert!(b.cache_diags.is_empty(), "{:?}", b.cache_diags);
        // And the original set is still warm and uncorrupted.
        let c = run("const");
        prop_assert_eq!(c.stats.analyzed, 0, "const rerun must be fully warm");
        prop_assert_eq!(
            qual_fingerprint(&src, &a),
            qual_fingerprint(&src, &c),
            "const results corrupted by the interleaved four-space run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
