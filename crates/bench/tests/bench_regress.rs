//! The perf-regression harness contract, at two levels:
//!
//! * unit tests of `compare_bench_docs` — exact count matching, the
//!   timing tolerance band (regressions flagged, speedups not), missing
//!   rows, and unknown-field tolerance;
//! * end-to-end runs of the `bench-regress` binary against a scratch
//!   directory — a fresh run records baselines and exits 0, a no-change
//!   rerun exits 0, and a baseline with doctored counts makes the rerun
//!   exit 1 (count drift) while still writing the new documents.

use std::path::{Path, PathBuf};
use std::process::Command;

use qual_bench::{bench_doc, compare_bench_docs};
use qual_obs::json::{parse, Json};
use qual_obs::schema::validate_bench;

fn row(name: &str, fields: &[(&str, u64)]) -> Json {
    let mut obj = vec![("name".to_owned(), Json::Str(name.to_owned()))];
    for (k, v) in fields {
        obj.push(((*k).to_owned(), Json::num(*v)));
    }
    Json::Obj(obj)
}

#[test]
fn counts_must_match_exactly() {
    let base = bench_doc("t", 3, vec![row("a", &[("mono", 7), ("mono_ns", 100)])]);
    let same = bench_doc("t", 3, vec![row("a", &[("mono", 7), ("mono_ns", 100)])]);
    assert!(compare_bench_docs(&base, &same, 25.0).is_empty());

    let off_by_one =
        bench_doc("t", 3, vec![row("a", &[("mono", 8), ("mono_ns", 100)])]);
    let drifts = compare_bench_docs(&base, &off_by_one, 25.0);
    assert_eq!(drifts.len(), 1);
    assert_eq!(drifts[0].field, "mono");
    assert!(!drifts[0].timing);
    assert_eq!((drifts[0].prev, drifts[0].cur), (7, 8));
    // A count going *down* is drift too — counts are exact, not banded.
    let lower = bench_doc("t", 3, vec![row("a", &[("mono", 6), ("mono_ns", 100)])]);
    assert_eq!(compare_bench_docs(&base, &lower, 25.0).len(), 1);
}

#[test]
fn timings_flag_only_regressions_beyond_tolerance() {
    let base = bench_doc("t", 3, vec![row("a", &[("mono_ns", 1000)])]);
    // Inside the band, and any speedup at all: clean.
    for cur in [1, 500, 1000, 1200, 1250] {
        let doc = bench_doc("t", 3, vec![row("a", &[("mono_ns", cur)])]);
        assert!(
            compare_bench_docs(&base, &doc, 25.0).is_empty(),
            "{cur} ns should be inside the 25% band"
        );
    }
    // Just past the band: flagged, and marked as a timing.
    let slow = bench_doc("t", 3, vec![row("a", &[("mono_ns", 1251)])]);
    let drifts = compare_bench_docs(&base, &slow, 25.0);
    assert_eq!(drifts.len(), 1);
    assert!(drifts[0].timing);
    assert!(drifts[0].to_string().contains("[timing]"), "{}", drifts[0]);
}

#[test]
fn missing_row_and_missing_field_are_count_drift() {
    let base = bench_doc(
        "t",
        3,
        vec![row("a", &[("mono", 7)]), row("b", &[("mono", 9)])],
    );
    let gone_row = bench_doc("t", 3, vec![row("a", &[("mono", 7)])]);
    let drifts = compare_bench_docs(&base, &gone_row, 25.0);
    assert_eq!(drifts.len(), 1);
    assert_eq!((drifts[0].row.as_str(), drifts[0].field.as_str()), ("b", "<missing>"));
    assert!(!drifts[0].timing);

    let gone_field =
        bench_doc("t", 3, vec![row("a", &[]), row("b", &[("mono", 9)])]);
    let drifts = compare_bench_docs(&base, &gone_field, 25.0);
    assert_eq!(drifts.len(), 1);
    assert_eq!((drifts[0].row.as_str(), drifts[0].field.as_str()), ("a", "mono"));
}

#[test]
fn fields_new_in_current_are_tolerated() {
    // A newer writer may add metrics; an older baseline without them
    // must not produce drift (mirrors the schema's unknown-field rule).
    let base = bench_doc("t", 3, vec![row("a", &[("mono", 7)])]);
    let newer =
        bench_doc("t", 3, vec![row("a", &[("mono", 7), ("shiny", 42)])]);
    assert!(compare_bench_docs(&base, &newer, 25.0).is_empty());
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("bench-regress-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_regress(out_dir: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench-regress"))
        .args([
            "--profiles",
            "woman-3.0a",
            "--lines",
            "60",
            "--reps",
            "3",
            "--jobs",
            "2",
            "--timings-warn-only",
            "--out-dir",
        ])
        .arg(out_dir)
        .output()
        .expect("bench-regress runs")
}

#[test]
fn binary_end_to_end_fresh_rerun_and_injected_drift() {
    let dir = scratch("e2e");

    // Fresh run: no baselines, records both documents, exits 0.
    let fresh = run_regress(&dir);
    assert!(
        fresh.status.success(),
        "fresh run failed: {}",
        String::from_utf8_lossy(&fresh.stderr)
    );
    let stdout = String::from_utf8_lossy(&fresh.stdout);
    assert!(stdout.contains("no baseline"), "{stdout}");
    for file in ["BENCH_table2.json", "BENCH_incr.json"] {
        let text = std::fs::read_to_string(dir.join(file))
            .unwrap_or_else(|e| panic!("{file} must exist: {e}"));
        let doc = parse(&text).expect("written doc parses");
        validate_bench(&doc).expect("written doc is schema-valid");
        assert!(
            !doc.get("rows").and_then(Json::as_arr).unwrap().is_empty(),
            "{file} has no rows"
        );
    }

    // Rerun against its own output: counts are deterministic, so no
    // drift (timings are warn-only above), exit 0.
    let rerun = run_regress(&dir);
    assert!(
        rerun.status.success(),
        "no-change rerun drifted: {}",
        String::from_utf8_lossy(&rerun.stderr)
    );

    // Doctor a count in the table2 baseline; the next run must detect
    // it, exit 1, and still overwrite with the fresh (correct) doc.
    let path = dir.join("BENCH_table2.json");
    let mut doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let original = bump_first_count(&mut doc);
    std::fs::write(&path, doc.render()).unwrap();
    let drifted = run_regress(&dir);
    assert_eq!(
        drifted.status.code(),
        Some(1),
        "doctored baseline must exit 1: {}",
        String::from_utf8_lossy(&drifted.stderr)
    );
    let stderr = String::from_utf8_lossy(&drifted.stderr);
    assert!(stderr.contains("COUNT DRIFT"), "{stderr}");
    // The healthy document replaced the doctored baseline.
    let rewritten = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(first_count(&rewritten), original);

    // A corrupt baseline is reported, skipped, and replaced: exit 0.
    std::fs::write(&path, "{ not json").unwrap();
    let recovered = run_regress(&dir);
    assert!(
        recovered.status.success(),
        "corrupt baseline must not fail the run: {}",
        String::from_utf8_lossy(&recovered.stderr)
    );
    assert!(
        String::from_utf8_lossy(&recovered.stderr).contains("baseline ignored"),
        "{}",
        String::from_utf8_lossy(&recovered.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Increments the `mono_constraints` count of the first row in place and
/// returns its original value.
fn bump_first_count(doc: &mut Json) -> u64 {
    let Some(Json::Arr(rows)) = obj_field(doc, "rows") else {
        panic!("doc has no rows array");
    };
    let Some(Json::Num(n)) = obj_field(&mut rows[0], "mono_constraints") else {
        panic!("row has no mono_constraints");
    };
    let original = *n as u64;
    *n = (original + 1) as f64;
    original
}

fn first_count(doc: &Json) -> u64 {
    doc.get("rows").and_then(Json::as_arr).unwrap()[0]
        .get("mono_constraints")
        .and_then(Json::as_u64)
        .unwrap()
}

fn obj_field<'a>(doc: &'a mut Json, name: &str) -> Option<&'a mut Json> {
    match doc {
        Json::Obj(fields) => fields
            .iter_mut()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v),
        _ => None,
    }
}
