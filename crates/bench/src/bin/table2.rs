//! Regenerates **Table 2** of the paper: per-benchmark compile time,
//! monomorphic and polymorphic inference time (median of five runs,
//! with the minimum alongside — the paper averaged five; medians resist
//! timer noise better), and the four const counts (Declared, Mono,
//! Poly, Total possible). Every row is **certified**: the solver's solution is
//! re-checked against the full constraint set before its counts are
//! printed, and a benchmark whose analysis or certification fails prints
//! its diagnostics and is skipped while the rest of the table completes.
//!
//! Absolute numbers differ from the paper (different hardware, simulated
//! benchmarks); the shapes to check are: Declared ≤ Mono ≤ Poly ≤ Total,
//! poly/mono time ratio ≤ ~3, and inference time roughly linear in
//! program size.

use qual_bench::measure_certified;
use qual_cgen::bench_profiles;

fn main() {
    let runs = if std::env::args().any(|a| a == "--quick") {
        1
    } else {
        5
    };
    println!("Table 2: Number of inferred possibly-const positions for benchmarks");
    println!("(times are median/min over {} run(s))", runs.max(3));
    println!(
        "{:<16} {:>9} {:>12} {:>17} {:>17} {:>9} {:>6} {:>6} {:>15}",
        "Name",
        "Lines",
        "Compile (s)",
        "Mono med/min (s)",
        "Poly med/min (s)",
        "Declared",
        "Mono",
        "Poly",
        "Total possible"
    );
    println!("{}", "-".repeat(116));
    let mut rows = Vec::new();
    let mut failed = 0usize;
    for p in bench_profiles() {
        let m = measure_certified(&p, runs);
        for d in &m.skipped {
            eprint!("{}", d.render(None));
        }
        let Some(row) = m.row else {
            failed += 1;
            println!(
                "{:<16} (no certified counts: {} diagnostic(s); see stderr)",
                m.name,
                m.skipped.len()
            );
            continue;
        };
        println!(
            "{:<16} {:>9} {:>12.3} {:>17} {:>17} {:>9} {:>6} {:>6} {:>15}",
            row.name,
            row.lines,
            row.compile.as_secs_f64(),
            format!(
                "{:.3}/{:.3}",
                row.mono_time.as_secs_f64(),
                row.mono_min.as_secs_f64()
            ),
            format!(
                "{:.3}/{:.3}",
                row.poly_time.as_secs_f64(),
                row.poly_min.as_secs_f64()
            ),
            row.declared,
            row.mono,
            row.poly,
            row.total
        );
        rows.push(row);
    }
    println!();
    // The paper's headline checks, plus the hardware-independent size
    // proxies (constraint counts and solver steps from the
    // observability layer) behind each timing.
    for row in &rows {
        let ratio = row.poly_time.as_secs_f64() / row.mono_time.as_secs_f64().max(1e-9);
        let extra = row.poly as f64 / row.mono.max(1) as f64;
        println!(
            "{:<16} poly/mono time ratio {ratio:>5.2}   poly finds {:>5.1}% more consts than mono   consts vs declared {:>4.2}x",
            row.name,
            (extra - 1.0) * 100.0,
            row.poly as f64 / row.declared.max(1) as f64
        );
        println!(
            "{:<16} constraints mono {} / poly {}   solver steps mono {} / poly {}",
            "", row.mono_constraints, row.poly_constraints, row.mono_steps, row.poly_steps
        );
    }
    if failed > 0 {
        eprintln!("table2: {failed} benchmark(s) produced no certified row");
    }
}
