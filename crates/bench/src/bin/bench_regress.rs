//! `bench-regress` — the pinned performance-regression harness.
//!
//! Runs the Table-1 cgen profiles through both measurement paths (the
//! serial certified bench and the incremental driver), writes two
//! versioned bench documents — `BENCH_table2.json` and
//! `BENCH_incr.json` — and compares each against the previous document
//! at the same path before overwriting it:
//!
//! * **counts** (positions, constraints, solver steps, units —
//!   everything hardware-independent) must match the baseline
//!   **exactly**; any difference is drift and fails the run;
//! * **timings** (fields ending `_ns`) only flag **regressions** beyond
//!   the tolerance (default 25%); speedups and noise inside the band
//!   pass. `--timings-warn-only` downgrades timing failures to
//!   warnings — CI uses it, because shared runners make wall-clock
//!   thresholds advisory at best.
//!
//! ```text
//! bench-regress [--quick] [--reps N] [--lines N] [--profiles a,b]
//!               [--out-dir DIR] [--baseline-dir DIR] [--tolerance PCT]
//!               [--timings-warn-only] [--jobs N]
//! ```
//!
//! Exit codes: 0 clean; 1 count drift; 2 timing regression (unless
//! `--timings-warn-only`); 3 a benchmark failed to produce a certified
//! row; 4 bad usage or an unwritable output.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qual_bench::{bench_doc, compare_bench_docs, measure_certified, BenchDrift};
use qual_cgen::bench_profiles;
use qual_incr::{analyze_source_incremental, IncrConfig};
use qual_obs::json::Json;
use qual_obs::schema::validate_bench;

struct Args {
    reps: u32,
    lines: Option<usize>,
    profiles: Option<Vec<String>>,
    out_dir: PathBuf,
    baseline_dir: Option<PathBuf>,
    tolerance: f64,
    timings_warn_only: bool,
    jobs: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-regress [--quick] [--reps N] [--lines N] [--profiles a,b]\n\
         \x20                    [--out-dir DIR] [--baseline-dir DIR]\n\
         \x20                    [--tolerance PCT] [--timings-warn-only] [--jobs N]"
    );
    ExitCode::from(4)
}

fn main() -> ExitCode {
    let mut args = Args {
        reps: 3,
        lines: None,
        profiles: None,
        out_dir: PathBuf::from("."),
        baseline_dir: None,
        tolerance: 25.0,
        timings_warn_only: false,
        jobs: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.lines = Some(300),
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => args.reps = n,
                _ => return usage(),
            },
            "--lines" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => args.lines = Some(n),
                _ => return usage(),
            },
            "--profiles" => match it.next() {
                Some(list) => {
                    args.profiles =
                        Some(list.split(',').map(str::to_owned).collect());
                }
                None => return usage(),
            },
            "--out-dir" => match it.next() {
                Some(d) => args.out_dir = PathBuf::from(d),
                None => return usage(),
            },
            "--baseline-dir" => match it.next() {
                Some(d) => args.baseline_dir = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) if t >= 0.0 => args.tolerance = t,
                _ => return usage(),
            },
            "--timings-warn-only" => args.timings_warn_only = true,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => args.jobs = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    let profiles: Vec<_> = bench_profiles()
        .into_iter()
        .filter(|p| {
            args.profiles
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == p.name))
        })
        .map(|p| match args.lines {
            Some(n) => p.scaled(n),
            None => p,
        })
        .collect();
    if profiles.is_empty() {
        eprintln!("bench-regress: no profiles matched");
        return usage();
    }

    let mut bench_failed = false;

    // Pass 1: the serial certified bench (Table 2 shape).
    let mut table2_rows = Vec::new();
    for p in &profiles {
        let m = measure_certified(p, args.reps);
        for d in &m.skipped {
            eprint!("{}", d.render(None));
        }
        match m.row {
            Some(row) => table2_rows.push(row.to_json()),
            None => {
                eprintln!("bench-regress: `{}` produced no certified row", m.name);
                bench_failed = true;
            }
        }
    }
    let table2 = bench_doc("table2", args.reps, table2_rows);

    // Pass 2: the incremental driver — cold serial, cold parallel
    // (pinned job count, so the document is machine-portable), a
    // warm-cache rerun, and a distributed cold/warm pair through the
    // multi-process sharded driver, with the driver's own counters as
    // the hardware-independent proxies.
    let mut incr_rows = Vec::new();
    let cache_root = std::env::temp_dir()
        .join(format!("bench-regress-{}", std::process::id()));
    for p in &profiles {
        let src = qual_cgen::generate(p);
        let lines = src.lines().count();
        let cache = cache_root.join(p.name);
        let _ = std::fs::remove_dir_all(&cache);
        let run = |cfg: &IncrConfig| {
            qual_obs::scoped(|| analyze_source_incremental(&src, cfg))
        };
        let (cold1, r1) = run(&IncrConfig::default());
        let (coldn, rn) = run(&IncrConfig {
            jobs: args.jobs,
            ..IncrConfig::default()
        });
        let cached = IncrConfig {
            cache_dir: Some(cache.clone()),
            ..IncrConfig::default()
        };
        let _ = analyze_source_incremental(&src, &cached);
        let (warm, rw) = run(&cached);
        let _ = std::fs::remove_dir_all(&cache);
        // Distributed pass: the same corpus through the multi-process
        // sharded driver, cold then warm against the shared cache. The
        // worker executable is this binary's sibling `cqual` when one
        // is built; without it the pool degrades in-process and the
        // timings simply measure the fallback (timings are advisory
        // either way — the counts must still match exactly).
        let worker_exe = std::env::current_exe().ok().and_then(|e| {
            let cand = e.parent()?.join("cqual");
            cand.is_file().then_some(cand)
        });
        let dist_cache = cache_root.join(format!("{}-dist", p.name));
        let _ = std::fs::remove_dir_all(&dist_cache);
        let dist_cfg = IncrConfig {
            workers: 2,
            worker_exe,
            cache_dir: Some(dist_cache.clone()),
            ..IncrConfig::default()
        };
        let (dist_cold, rdc) = run(&dist_cfg);
        let (dist_warm, rdw) = run(&dist_cfg);
        let _ = std::fs::remove_dir_all(&dist_cache);
        // Served pass: the same corpus through a resident analysis
        // server (the `cquald` session, hosted in-process) over its
        // unix socket — a cold request into the fresh session, then a
        // memo-warm repeat. The roundtrip wall clocks bound the
        // daemon's framing/dispatch overhead; the served report must
        // carry exactly the in-process counts.
        let sock = cache_root.join(format!("{}-serve.sock", p.name));
        let (serve_report, serve_cold_ns, serve_warm_ns) =
            match qual_incr::serve::serve(qual_incr::serve::ServeConfig::for_socket(
                sock.clone(),
            )) {
                Ok(handle) => {
                    let conn = qual_incr::serve::Connect::new(sock.clone());
                    let req = qual_incr::proto::AnalyzeReq {
                        version: qual_incr::proto::PROTO_VERSION,
                        src: src.clone(),
                        mode: IncrConfig::default().mode,
                        quals: "const".to_owned(),
                        verify: false,
                        deadline_ms: None,
                    };
                    let t = std::time::Instant::now();
                    let cold = qual_incr::serve::request_analyze(&conn, &req);
                    let cold_ns = t.elapsed().as_nanos() as u64;
                    let t = std::time::Instant::now();
                    let rewarm = qual_incr::serve::request_analyze(&conn, &req);
                    let warm_ns = t.elapsed().as_nanos() as u64;
                    let _ = handle.stop();
                    match (cold, rewarm) {
                        (Ok(c), Ok(w)) if w.warm => (Some(c), cold_ns, warm_ns),
                        (Ok(_), Ok(_)) => {
                            eprintln!(
                                "bench-regress: `{}`: served repeat was not memo-warm",
                                p.name
                            );
                            (None, cold_ns, warm_ns)
                        }
                        (c, w) => {
                            eprintln!(
                                "bench-regress: `{}`: served pass failed: {:?} / {:?}",
                                p.name,
                                c.err(),
                                w.err()
                            );
                            (None, cold_ns, warm_ns)
                        }
                    }
                }
                Err(e) => {
                    eprintln!(
                        "bench-regress: `{}`: cannot start analysis server: {e}",
                        p.name
                    );
                    (None, 0, 0)
                }
            };
        let served_counts = match &serve_report {
            Some(rep) => rep
                .counts
                .map(|[t, d, i]| qual_constinfer::ConstCounts {
                    total: t as usize,
                    declared: d as usize,
                    inferred: i as usize,
                }),
            None => None,
        };
        if serve_report.is_none() || cold1.counts != served_counts {
            eprintln!(
                "bench-regress: `{}`: served counts differ from the in-process run",
                p.name
            );
            bench_failed = true;
            continue;
        }
        if cold1.counts != coldn.counts
            || cold1.counts != warm.counts
            || cold1.counts != dist_cold.counts
            || cold1.counts != dist_warm.counts
        {
            eprintln!(
                "bench-regress: `{}`: counts differ across serial/parallel/warm/distributed runs",
                p.name
            );
            bench_failed = true;
            continue;
        }
        incr_rows.push(Json::Obj(vec![
            ("name".to_owned(), Json::Str(p.name.to_owned())),
            ("lines".to_owned(), Json::num(lines as u64)),
            ("units".to_owned(), Json::num(cold1.stats.units as u64)),
            (
                "wavefronts".to_owned(),
                Json::num(cold1.stats.wavefronts as u64),
            ),
            (
                "merged_constraints".to_owned(),
                Json::num(cold1.stats.constraints as u64),
            ),
            ("warm_reused".to_owned(), Json::num(warm.stats.reused as u64)),
            (
                "warm_analyzed".to_owned(),
                Json::num(warm.stats.analyzed as u64),
            ),
            ("cold1_ns".to_owned(), Json::num(r1.total_ns)),
            ("coldn_ns".to_owned(), Json::num(rn.total_ns)),
            ("warm_ns".to_owned(), Json::num(rw.total_ns)),
            ("dist_cold_ns".to_owned(), Json::num(rdc.total_ns)),
            ("dist_warm_ns".to_owned(), Json::num(rdw.total_ns)),
            ("serve_cold_ns".to_owned(), Json::num(serve_cold_ns)),
            ("serve_warm_ns".to_owned(), Json::num(serve_warm_ns)),
        ]));
    }
    let _ = std::fs::remove_dir_all(&cache_root);
    let incr = bench_doc("incr", args.reps, incr_rows);

    // Pass 3: the qualifier-set matrix — every profile analyzed under
    // each pinned `--qual` set, all coordinates in one word-parallel
    // solve. One row per (profile, set) with the per-qualifier may/must
    // tallies as hardware-independent counts: a rules change that
    // shifts what any space infers shows up as count drift here, and a
    // solve that silently stopped being single-pass shows up in the
    // (advisory) timing ratio against the const-only row.
    const QUAL_SETS: &[&str] = &[
        "const",
        "const,nonnull",
        "tainted",
        "const,nonnull,tainted,linear",
    ];
    let mut qual_rows = Vec::new();
    for p in &profiles {
        let src = qual_cgen::generate(p);
        for set in QUAL_SETS {
            let space = qual_constinfer::space_for(set)
                .expect("built-in qualifier sets");
            let cfg = IncrConfig {
                space,
                ..IncrConfig::default()
            };
            let (out, rep) =
                qual_obs::scoped(|| analyze_source_incremental(&src, &cfg));
            let Some(counts) = out.counts else {
                eprintln!(
                    "bench-regress: `{}` under --qual {set} produced no counts",
                    p.name
                );
                bench_failed = true;
                continue;
            };
            let mut fields = vec![
                (
                    "name".to_owned(),
                    Json::Str(format!("{}@{set}", p.name)),
                ),
                ("coords".to_owned(), Json::num(rep.peak_value("solve.coords"))),
                ("total".to_owned(), Json::num(counts.total as u64)),
                ("inferred".to_owned(), Json::num(counts.inferred as u64)),
                (
                    "merged_constraints".to_owned(),
                    Json::num(out.stats.constraints as u64),
                ),
            ];
            for qc in &out.qual_counts {
                fields.push((format!("{}_may", qc.name), Json::num(qc.may as u64)));
                fields.push((format!("{}_must", qc.name), Json::num(qc.must as u64)));
            }
            fields.push(("cold_ns".to_owned(), Json::num(rep.total_ns)));
            qual_rows.push(Json::Obj(fields));
        }
    }
    let quals = bench_doc("quals", args.reps, qual_rows);

    // Compare against baselines, then persist the new documents.
    let baseline_dir = args.baseline_dir.as_deref();
    let mut count_drift = false;
    let mut timing_regression = false;
    for (file, doc) in [
        ("BENCH_table2.json", &table2),
        ("BENCH_incr.json", &incr),
        ("BENCH_quals.json", &quals),
    ] {
        let baseline_path =
            baseline_dir.unwrap_or(args.out_dir.as_path()).join(file);
        match read_baseline(&baseline_path) {
            Baseline::Absent => {
                println!("bench-regress: {file}: no baseline, recording fresh");
            }
            Baseline::Unusable(why) => {
                eprintln!(
                    "bench-regress: {file}: baseline ignored ({why}); recording fresh"
                );
            }
            Baseline::Doc(prev) => {
                let drifts = compare_bench_docs(&prev, doc, args.tolerance);
                report_drifts(
                    file,
                    &drifts,
                    args.timings_warn_only,
                    &mut count_drift,
                    &mut timing_regression,
                );
            }
        }
        let out_path = args.out_dir.join(file);
        if let Err(e) = std::fs::write(&out_path, doc.render()) {
            eprintln!(
                "bench-regress: cannot write {}: {e}",
                out_path.display()
            );
            return ExitCode::from(4);
        }
        println!("bench-regress: wrote {}", out_path.display());
    }

    if bench_failed {
        ExitCode::from(3)
    } else if count_drift {
        ExitCode::from(1)
    } else if timing_regression {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

enum Baseline {
    Absent,
    Unusable(String),
    Doc(Json),
}

/// Loads and schema-checks a previous bench document. An unreadable or
/// invalid baseline is reported and skipped — a corrupted old file must
/// not block recording a good new one.
fn read_baseline(path: &Path) -> Baseline {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Baseline::Absent;
        }
        Err(e) => return Baseline::Unusable(format!("unreadable: {e}")),
    };
    let doc = match qual_obs::json::parse(&text) {
        Ok(d) => d,
        Err(e) => return Baseline::Unusable(format!("unparsable: {e}")),
    };
    match validate_bench(&doc) {
        Ok(()) => Baseline::Doc(doc),
        Err(e) => Baseline::Unusable(format!("schema-invalid: {e}")),
    }
}

fn report_drifts(
    file: &str,
    drifts: &[BenchDrift],
    timings_warn_only: bool,
    count_drift: &mut bool,
    timing_regression: &mut bool,
) {
    if drifts.is_empty() {
        println!("bench-regress: {file}: no drift vs baseline");
        return;
    }
    for d in drifts {
        if d.timing {
            if timings_warn_only {
                eprintln!("bench-regress: {file}: warning: {d}");
            } else {
                eprintln!("bench-regress: {file}: TIMING REGRESSION: {d}");
                *timing_regression = true;
            }
        } else {
            eprintln!("bench-regress: {file}: COUNT DRIFT: {d}");
            *count_drift = true;
        }
    }
}
