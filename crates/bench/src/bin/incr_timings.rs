//! Benchmarks the incremental driver against itself: per Table-1
//! profile, times a cold 1-thread run, a cold N-thread run, and a
//! warm-cache rerun, and verifies the warm run re-solved nothing. The
//! three configurations are required to produce identical counts, so
//! the table doubles as a quick differential check.
//!
//! ```text
//! cargo run -p qual-bench --bin incr-timings --release [-- --quick]
//! ```

use qual_cgen::table1_profiles;
use qual_incr::{analyze_source_incremental, IncrConfig, IncrOutcome};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(8);
    let cache_root = std::env::temp_dir().join(format!(
        "qual-bench-incremental-{}",
        std::process::id()
    ));
    println!("Incremental driver: cold/warm and 1-thread/{jobs}-thread timings");
    println!(
        "{:<16} {:>8} {:>7} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "Name",
        "Lines",
        "Units",
        "Cold 1j (s)",
        format!("Cold {jobs}j (s)"),
        "Warm (s)",
        "Speedup",
        "Reused"
    );
    println!("{}", "-".repeat(92));
    for p in table1_profiles() {
        let p = if quick { p.scaled(300) } else { p };
        let src = qual_cgen::generate(&p);
        let lines = src.lines().count();
        let cache = cache_root.join(p.name);
        let _ = std::fs::remove_dir_all(&cache);

        // Timings come from the observability layer: each run is
        // collected under a scope and its monotonic `total_ns` is the
        // reported wall time — the same measurement `cqual --metrics`
        // emits.
        let time = |cfg: &IncrConfig| -> (f64, IncrOutcome) {
            let (out, report) =
                qual_obs::scoped(|| analyze_source_incremental(&src, cfg));
            (report.total_ns as f64 / 1e9, out)
        };

        let (cold1, a) = time(&IncrConfig::default());
        let (coldn, b) = time(&IncrConfig {
            jobs,
            ..IncrConfig::default()
        });
        // Populate the cache untimed, then time the warm rerun.
        let cached = IncrConfig {
            cache_dir: Some(cache.clone()),
            ..IncrConfig::default()
        };
        let _ = analyze_source_incremental(&src, &cached);
        let (warm, c) = time(&cached);

        assert_eq!(a.counts, b.counts, "{}: jobs changed the counts", p.name);
        assert_eq!(a.counts, c.counts, "{}: the cache changed the counts", p.name);
        assert_eq!(
            c.stats.analyzed, 0,
            "{}: warm rerun re-solved {} unit(s)",
            p.name, c.stats.analyzed
        );

        println!(
            "{:<16} {:>8} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x {:>6}/{}",
            p.name,
            lines,
            a.stats.units,
            cold1,
            coldn,
            warm,
            cold1 / coldn.max(1e-9),
            c.stats.reused,
            c.stats.units
        );
        let _ = std::fs::remove_dir_all(&cache);
    }
    let _ = std::fs::remove_dir_all(&cache_root);
}
