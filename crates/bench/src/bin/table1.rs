//! Regenerates **Table 1** of the paper: the benchmark suite (name, line
//! count, description), using the simulated benchmark programs' actual
//! generated line counts.

use qual_cgen::table1_profiles;

fn main() {
    println!("Table 1: Benchmarks for const inference");
    println!("{:<16} {:>8} {:>10}  Description", "Name", "Lines", "(generated)");
    println!("{}", "-".repeat(78));
    for p in table1_profiles() {
        let src = qual_cgen::generate(&p);
        let generated = src.lines().count();
        println!(
            "{:<16} {:>8} {:>10}  {}",
            p.name, p.lines, generated, p.description
        );
    }
    println!();
    println!(
        "Paper line counts are the targets; (generated) is the simulated\n\
         program emitted by qual-cgen for this run."
    );
}
