//! Regenerates **Table 1** of the paper: the benchmark suite (name, line
//! count, description), using the simulated benchmark programs' actual
//! generated line counts.
//!
//! Each generated program is pushed through the fault-isolated analysis
//! pipeline before its row is printed: a benchmark that fails to parse
//! or analyze gets its diagnostics on stderr and a `FAULT` marker, and
//! the run continues with the remaining benchmarks.

use qual_cgen::table1_profiles;
use qual_constinfer::{analyze_source_resilient, Budgets, Mode};

fn main() {
    println!("Table 1: Benchmarks for const inference");
    println!(
        "{:<16} {:>8} {:>10} {:>7}  Description",
        "Name", "Lines", "(generated)", "Status"
    );
    println!("{}", "-".repeat(86));
    let mut faults = 0usize;
    for p in table1_profiles() {
        let src = qual_cgen::generate(&p);
        let generated = src.lines().count();
        let outcome =
            analyze_source_resilient(&src, Mode::Monomorphic, Budgets::default());
        let status = if outcome.is_clean() { "ok" } else { "FAULT" };
        if !outcome.is_clean() {
            faults += 1;
            for d in &outcome.skipped {
                eprint!("{}", d.render(Some(&src)));
            }
        }
        println!(
            "{:<16} {:>8} {:>10} {:>7}  {}",
            p.name, p.lines, generated, status, p.description
        );
    }
    println!();
    println!(
        "Paper line counts are the targets; (generated) is the simulated\n\
         program emitted by qual-cgen for this run."
    );
    if faults > 0 {
        eprintln!("table1: {faults} benchmark(s) reported diagnostics (rows kept)");
    }
}
