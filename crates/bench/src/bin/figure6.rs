//! Regenerates **Figure 6** of the paper: for each benchmark, the
//! interesting const positions broken into stacked percentages —
//! Declared / Mono (extra) / Poly (extra) / Other — rendered as ASCII
//! bars.

use qual_bench::{bar, measure};
use qual_cgen::table1_profiles;

fn main() {
    println!("Figure 6: Number of inferred consts for benchmarks (percent of total)");
    println!();
    println!("legend: D = declared, M = mono-only, P = poly-only, . = other");
    println!();
    for p in table1_profiles() {
        let row = measure(&p, 1);
        let (d, m, x, o) = row.percentages();
        let width = 60usize;
        let dn = ((d / 100.0) * width as f64).round() as usize;
        let mn = ((m / 100.0) * width as f64).round() as usize;
        let xn = ((x / 100.0) * width as f64).round() as usize;
        let on = width.saturating_sub(dn + mn + xn);
        let mut chart = String::new();
        chart.extend(std::iter::repeat_n('D', dn));
        chart.extend(std::iter::repeat_n('M', mn));
        chart.extend(std::iter::repeat_n('P', xn));
        chart.extend(std::iter::repeat_n('.', on));
        println!(
            "{:<16} |{chart}| D {d:>5.1}%  M {m:>5.1}%  P {x:>5.1}%  other {o:>5.1}%",
            row.name
        );
    }
    println!();
    println!("(Each bar is the Total-possible positions of Table 2, normalized.)");
    let _ = bar(0.0, 0); // keep the shared helper linked
}
