//! Regenerates **Figure 6** of the paper: for each benchmark, the
//! interesting const positions broken into stacked percentages —
//! Declared / Mono (extra) / Poly (extra) / Other — rendered as ASCII
//! bars. Counts come from certified solutions only; a benchmark that
//! fails to analyze or certify prints its diagnostics and is skipped
//! while the remaining bars render.

use qual_bench::{bar, measure_certified};
use qual_cgen::table1_profiles;

fn main() {
    println!("Figure 6: Number of inferred consts for benchmarks (percent of total)");
    println!();
    println!("legend: D = declared, M = mono-only, P = poly-only, . = other");
    println!();
    let mut failed = 0usize;
    for p in table1_profiles() {
        let m = measure_certified(&p, 1);
        for d in &m.skipped {
            eprint!("{}", d.render(None));
        }
        let Some(row) = m.row else {
            failed += 1;
            println!("{:<16} (no certified counts; see stderr)", m.name);
            continue;
        };
        let (d, m, x, o) = row.percentages();
        let width = 60usize;
        let dn = ((d / 100.0) * width as f64).round() as usize;
        let mn = ((m / 100.0) * width as f64).round() as usize;
        let xn = ((x / 100.0) * width as f64).round() as usize;
        let on = width.saturating_sub(dn + mn + xn);
        let mut chart = String::new();
        chart.extend(std::iter::repeat_n('D', dn));
        chart.extend(std::iter::repeat_n('M', mn));
        chart.extend(std::iter::repeat_n('P', xn));
        chart.extend(std::iter::repeat_n('.', on));
        println!(
            "{:<16} |{chart}| D {d:>5.1}%  M {m:>5.1}%  P {x:>5.1}%  other {o:>5.1}%",
            row.name
        );
    }
    println!();
    println!("(Each bar is the Total-possible positions of Table 2, normalized.)");
    if failed > 0 {
        eprintln!("figure6: {failed} benchmark(s) produced no certified bar");
    }
    let _ = bar(0.0, 0); // keep the shared helper linked
}
