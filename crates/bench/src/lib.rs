//! Shared measurement machinery for regenerating the paper's evaluation
//! (§4.4): Table 1 (the benchmark suite), Table 2 (timings and const
//! counts), and Figure 6 (the same counts as percentages).
//!
//! Run the binaries:
//!
//! ```text
//! cargo run -p qual-bench --bin table1
//! cargo run -p qual-bench --bin table2 --release
//! cargo run -p qual-bench --bin figure6 --release
//! ```
//!
//! and the Criterion micro-benches (`cargo bench -p qual-bench`) for the
//! scaling and mono-vs-poly claims.

use std::time::{Duration, Instant};

use qual_cgen::Profile;
use qual_constinfer::{ConstCounts, Mode};

/// One benchmark's full measurement — a row of Table 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Generated source line count.
    pub lines: usize,
    /// Parse + semantic analysis time ("compile time").
    pub compile: Duration,
    /// Monomorphic inference time.
    pub mono_time: Duration,
    /// Polymorphic inference time.
    pub poly_time: Duration,
    /// Consts declared in the source.
    pub declared: usize,
    /// Possible consts under monomorphic inference.
    pub mono: usize,
    /// Possible consts under polymorphic inference.
    pub poly: usize,
    /// Total interesting positions.
    pub total: usize,
}

impl Row {
    /// The Figure-6 stacked percentages `(declared, mono-extra,
    /// poly-extra, other)`, summing to 100.
    #[must_use]
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let t = self.total as f64;
        let d = self.declared as f64 / t * 100.0;
        let m = (self.mono - self.declared) as f64 / t * 100.0;
        let p = (self.poly - self.mono) as f64 / t * 100.0;
        (d, m, p, 100.0 - d - m - p)
    }
}

/// Generates, compiles, and analyzes one profile, timing each phase.
/// `runs` repetitions are averaged for the inference times (the paper
/// used the average of five).
///
/// # Panics
///
/// Panics if the generated program fails to parse or resolve (generator
/// bug by construction).
#[must_use]
pub fn measure(profile: &Profile, runs: u32) -> Row {
    let src = qual_cgen::generate(profile);
    let lines = src.lines().count();

    let t0 = Instant::now();
    let prog = qual_cfront::parse(&src).expect("generated source parses");
    let sema = qual_cfront::sema::analyze(&prog).expect("generated source resolves");
    let compile = t0.elapsed();

    let space = qual_lattice::QualSpace::const_only();
    let time_mode = |mode: Mode| -> (Duration, ConstCounts) {
        let mut best_counts = ConstCounts::default();
        let mut total = Duration::ZERO;
        for _ in 0..runs.max(1) {
            let t = Instant::now();
            let analysis = qual_constinfer::run(&prog, &sema, &space, mode);
            total += t.elapsed();
            best_counts = qual_constinfer::count::summarize(&prog, analysis).counts;
        }
        (total / runs.max(1), best_counts)
    };
    let (mono_time, mono_counts) = time_mode(Mode::Monomorphic);
    let (poly_time, poly_counts) = time_mode(Mode::Polymorphic);
    assert_eq!(mono_counts.total, poly_counts.total);

    Row {
        name: profile.name.to_owned(),
        lines,
        compile,
        mono_time,
        poly_time,
        declared: mono_counts.declared,
        mono: mono_counts.inferred,
        poly: poly_counts.inferred,
        total: mono_counts.total,
    }
}

/// Renders a simple ASCII horizontal bar of `pct` percent, `width` chars.
#[must_use]
pub fn bar(pct: f64, width: usize) -> String {
    let filled = ((pct / 100.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use qual_cgen::table1_profiles;

    #[test]
    fn measure_produces_consistent_row() {
        let p = table1_profiles()[0].scaled(400);
        let row = measure(&p, 1);
        assert!(row.declared <= row.mono);
        assert!(row.mono <= row.poly);
        assert!(row.poly <= row.total);
        let (d, m, x, o) = row.percentages();
        assert!((d + m + x + o - 100.0).abs() < 1e-6);
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(50.0, 10), "#####.....");
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(100.0, 4), "####");
    }
}
