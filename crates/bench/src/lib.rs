//! Shared measurement machinery for regenerating the paper's evaluation
//! (§4.4): Table 1 (the benchmark suite), Table 2 (timings and const
//! counts), and Figure 6 (the same counts as percentages).
//!
//! Every count that leaves this harness is **certified**: the solver's
//! solution is re-checked against the full constraint set by
//! [`qual_solve::verify_solution`] before a [`Row`] is built. A
//! benchmark unit that fails anywhere — parse, sema, inference budget,
//! solving, certification — yields its diagnostics instead of a row, so
//! one broken unit cannot take down a table run.
//!
//! Run the binaries:
//!
//! ```text
//! cargo run -p qual-bench --bin table1
//! cargo run -p qual-bench --bin table2 --release
//! cargo run -p qual-bench --bin figure6 --release
//! ```
//!
//! and the Criterion micro-benches (`cargo bench -p qual-bench`) for the
//! scaling and mono-vs-poly claims.

use std::time::{Duration, Instant};

use qual_cgen::Profile;
use qual_constinfer::{
    recover_front_end, run_budgeted, Budgets, ConstCounts, Mode, Options,
};
use qual_solve::{Diagnostic, Phase};

/// One benchmark's full measurement — a row of Table 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Generated source line count.
    pub lines: usize,
    /// Parse + semantic analysis time ("compile time").
    pub compile: Duration,
    /// Monomorphic inference time (median over the repetitions).
    pub mono_time: Duration,
    /// Fastest monomorphic repetition.
    pub mono_min: Duration,
    /// Polymorphic inference time (median over the repetitions).
    pub poly_time: Duration,
    /// Fastest polymorphic repetition.
    pub poly_min: Duration,
    /// Consts declared in the source.
    pub declared: usize,
    /// Possible consts under monomorphic inference.
    pub mono: usize,
    /// Possible consts under polymorphic inference.
    pub poly: usize,
    /// Total interesting positions.
    pub total: usize,
}

impl Row {
    /// The Figure-6 stacked percentages `(declared, mono-extra,
    /// poly-extra, other)`, summing to 100.
    #[must_use]
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let t = self.total as f64;
        let d = self.declared as f64 / t * 100.0;
        let m = (self.mono - self.declared) as f64 / t * 100.0;
        let p = (self.poly - self.mono) as f64 / t * 100.0;
        (d, m, p, 100.0 - d - m - p)
    }
}

/// A fault-isolated, certified measurement: the row (when every phase
/// succeeded and both solutions passed the verifier) plus every
/// diagnostic raised along the way.
#[derive(Debug)]
pub struct Measurement {
    /// Benchmark name (present even when the row is not).
    pub name: String,
    /// The certified row, or `None` if any mode failed to produce a
    /// certified count.
    pub row: Option<Row>,
    /// Everything that went wrong, in pipeline order.
    pub skipped: Vec<Diagnostic>,
}

/// Generates, compiles, analyzes, and **certifies** one profile, timing
/// each phase. At least three repetitions are always taken (`runs` is
/// clamped up), and the inference times report the **median** with the
/// **minimum** alongside — medians resist scheduler noise where the
/// paper's averages would absorb it. The timed runs use plain
/// options; the certification pass re-checks the final run's solution
/// against every constraint, untimed, so verification cost never skews
/// the reported times.
///
/// Never panics: a fault in any phase becomes a [`Diagnostic`] in
/// [`Measurement::skipped`] and the row is withheld.
#[must_use]
pub fn measure_certified(profile: &Profile, runs: u32) -> Measurement {
    let src = qual_cgen::generate(profile);
    let lines = src.lines().count();

    let t0 = Instant::now();
    let unit = recover_front_end(&src);
    let compile = t0.elapsed();
    let mut skipped = unit.skipped;

    let space = qual_lattice::QualSpace::const_only();
    let runs = runs.max(3);
    let time_mode = |mode: Mode,
                         skipped: &mut Vec<Diagnostic>|
     -> (Duration, Duration, Option<ConstCounts>) {
        let mut times = Vec::with_capacity(runs as usize);
        let mut last = None;
        for _ in 0..runs {
            let t = Instant::now();
            let ran = run_budgeted(
                &unit.program,
                &unit.sema,
                &space,
                mode,
                Options::default(),
                Budgets::default(),
            );
            times.push(t.elapsed());
            last = Some(ran);
        }
        let (analysis, engine_skipped) = last.expect("runs >= 1");
        skipped.extend(engine_skipped);
        // The certification gate: no count leaves the harness without
        // the independent checker accepting the solution it came from.
        let counts = match &analysis.solution {
            Ok(sol) => match qual_solve::verify_solution(
                &analysis.space,
                analysis.constraints.constraints(),
                sol,
            ) {
                Ok(()) => {
                    Some(
                        qual_constinfer::count::summarize(&unit.program, analysis)
                            .counts,
                    )
                }
                Err(e) => {
                    skipped.push(Diagnostic::error(
                        Phase::Verify,
                        format!("{mode:?} solution failed certification: {e}"),
                    ));
                    None
                }
            },
            Err(failure) => {
                skipped.push(Diagnostic::error(
                    Phase::Solve,
                    format!("{mode:?}: {failure}"),
                ));
                None
            }
        };
        times.sort_unstable();
        let min = times[0];
        let median = if times.len() % 2 == 1 {
            times[times.len() / 2]
        } else {
            (times[times.len() / 2 - 1] + times[times.len() / 2]) / 2
        };
        (median, min, counts)
    };

    let (mono_time, mono_min, mono_counts) =
        time_mode(Mode::Monomorphic, &mut skipped);
    let (poly_time, poly_min, poly_counts) =
        time_mode(Mode::Polymorphic, &mut skipped);

    let row = match (mono_counts, poly_counts) {
        (Some(m), Some(p)) if m.total == p.total => Some(Row {
            name: profile.name.to_owned(),
            lines,
            compile,
            mono_time,
            mono_min,
            poly_time,
            poly_min,
            declared: m.declared,
            mono: m.inferred,
            poly: p.inferred,
            total: m.total,
        }),
        (Some(m), Some(p)) => {
            skipped.push(Diagnostic::error(
                Phase::Verify,
                format!(
                    "mode disagreement: mono sees {} interesting positions, \
                     poly sees {}",
                    m.total, p.total
                ),
            ));
            None
        }
        _ => None,
    };
    Measurement {
        name: profile.name.to_owned(),
        row,
        skipped,
    }
}

/// Generates, compiles, and analyzes one profile, timing each phase.
///
/// # Panics
///
/// Panics if the generated program fails to analyze or certify
/// (generator bug by construction); [`measure_certified`] is the
/// non-panicking form the table binaries use.
#[must_use]
pub fn measure(profile: &Profile, runs: u32) -> Row {
    let m = measure_certified(profile, runs);
    match m.row {
        Some(row) => row,
        None => panic!(
            "benchmark `{}` failed to produce a certified row: {}",
            m.name,
            m.skipped
                .iter()
                .map(|d| d.render(None))
                .collect::<String>()
        ),
    }
}

/// Renders a simple ASCII horizontal bar of `pct` percent, `width` chars.
#[must_use]
pub fn bar(pct: f64, width: usize) -> String {
    let filled = ((pct / 100.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use qual_cgen::table1_profiles;

    #[test]
    fn measure_produces_consistent_row() {
        let p = table1_profiles()[0].scaled(400);
        let row = measure(&p, 1);
        // `runs` is clamped to >= 3, so minima are real minima.
        assert!(row.mono_min <= row.mono_time);
        assert!(row.poly_min <= row.poly_time);
        assert!(row.declared <= row.mono);
        assert!(row.mono <= row.poly);
        assert!(row.poly <= row.total);
        let (d, m, x, o) = row.percentages();
        assert!((d + m + x + o - 100.0).abs() < 1e-6);
    }

    #[test]
    fn certified_measurement_is_clean_on_generated_code() {
        let p = table1_profiles()[1].scaled(300);
        let m = measure_certified(&p, 1);
        assert!(m.row.is_some(), "diagnostics: {:?}", m.skipped);
        assert!(m.skipped.is_empty(), "diagnostics: {:?}", m.skipped);
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(50.0, 10), "#####.....");
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(100.0, 4), "####");
    }
}
