//! Cross-crate integration: generator → C front end → const inference →
//! counting, plus lambda-calculus ↔ solver interplay — the end-to-end
//! paths the paper's evaluation exercises.

use quals::cgen::{generate, table1_profiles};
use quals::constinfer::{analyze_source, Mode, PositionClass};
use quals::lambda::rules::{ConstRules, NonzeroRules};
use quals::lambda::{infer_program, parse};
use quals::lattice::QualSpace;

#[test]
fn benchmark_pipeline_reproduces_paper_shape() {
    // One mid-size benchmark end to end.
    let profile = table1_profiles()[3].scaled(1500); // diffutils composition
    let src = generate(&profile);
    let mono = analyze_source(&src, Mode::Monomorphic).expect("mono");
    let poly = analyze_source(&src, Mode::Polymorphic).expect("poly");

    // Correct C program: both systems satisfiable.
    assert!(mono.analysis.solution.is_ok());
    assert!(poly.analysis.solution.is_ok());

    // Table-2 column ordering.
    let (m, p) = (mono.counts, poly.counts);
    assert!(m.declared <= m.inferred && m.inferred <= p.inferred && p.inferred <= p.total);

    // The paper's headline: many more consts inferable than declared.
    assert!(m.inferred > m.declared);
    // And poly strictly helps.
    assert!(p.inferred > m.inferred);
}

#[test]
fn declared_consts_never_lost() {
    // Anything declared const must be classified must-const by both modes
    // (removing a const "merely shifts the annotation from (1) to (3)").
    let src = "int f(const char *s) { return *s; }\n\
               int g(const int *p, int *q) { *q = *p; return 0; }";
    for mode in [Mode::Monomorphic, Mode::Polymorphic] {
        let r = analyze_source(src, mode).expect("analyzes");
        for pos in &r.positions {
            if pos.declared {
                assert_eq!(
                    pos.class,
                    PositionClass::MustConst,
                    "{} in {mode:?}",
                    pos.label()
                );
            }
        }
    }
}

#[test]
fn lambda_and_c_agree_on_the_id_story() {
    // §1's C story and its §3.2 lambda rendering must agree: mono
    // rejects / pessimizes, poly accepts.
    let c_src = "char *id(char *x) { return x; }
                 void w(char *buf) { *id(buf) = 'x'; }
                 char *r(char *msg) { return id(msg); }";
    let mono = analyze_source(c_src, Mode::Monomorphic).unwrap();
    let poly = analyze_source(c_src, Mode::Polymorphic).unwrap();
    assert!(poly.counts.inferred > mono.counts.inferred);

    let lam_src = "let id = \\x. x in
                   let y = id (ref 1) in
                   let z = id ({const} ref 1) in
                   let u = y := 2 in () ni ni ni ni";
    let out = infer_program(lam_src, &ConstRules::space(), &ConstRules).unwrap();
    assert!(out.is_well_qualified());
}

#[test]
fn every_table1_profile_is_satisfiable_in_both_modes() {
    for p in table1_profiles() {
        let src = generate(&p.scaled(p.lines.min(800)));
        for mode in [Mode::Monomorphic, Mode::Polymorphic] {
            let r = analyze_source(&src, mode)
                .unwrap_or_else(|e| panic!("{} {mode:?}: {e}", p.name));
            assert!(
                r.analysis.solution.is_ok(),
                "{} {mode:?}: generated (correct) C must be satisfiable",
                p.name
            );
        }
    }
}

#[test]
fn lambda_soundness_on_a_c_like_program() {
    // The operational semantics and inference agree on a program that
    // mirrors the §4.1 translation example (x = y with const y).
    let space = QualSpace::figure2();
    let src = "let y = {const} ref ({nonzero} 1) in
               let x = ref 0 in
               let u = x := !y in
               (!x)|{nonzero}
               ni ni ni";
    // Reading y is fine; the assertion holds because the stored value is
    // nonzero... but x previously held 0 and refs are invariant, so the
    // cell type of x must reconcile 0 and nonzero: the assertion fails.
    let out = infer_program(src, &space, &NonzeroRules).unwrap();
    assert!(!out.is_well_qualified());

    // Drop the initial 0 and it becomes fine.
    let src_ok = "let y = {const} ref ({nonzero} 1) in
                  let x = ref ({nonzero} 2) in
                  let u = x := !y in
                  (!x)|{nonzero}
                  ni ni ni";
    let out = infer_program(src_ok, &space, &NonzeroRules).unwrap();
    assert!(out.is_well_qualified(), "{:?}", out.violations());
    // And it runs without getting stuck.
    let e = parse(src_ok, &space).unwrap();
    assert!(quals::lambda::eval::eval_with(&e, &space, &NonzeroRules, 10_000).is_ok());
}

#[test]
fn scaling_is_subquadratic() {
    // The paper: "inference scales roughly linearly with program size."
    // Verify 4x input doesn't cost more than ~10x time (generous bound
    // for a debug-mode smoke test).
    use std::time::Instant;
    let base = &table1_profiles()[0];
    let time_for = |lines: usize| {
        let src = generate(&base.scaled(lines));
        let prog = quals::cfront::parse(&src).unwrap();
        let sema = quals::cfront::sema::analyze(&prog).unwrap();
        let space = QualSpace::const_only();
        let t = Instant::now();
        let a = quals::constinfer::run(&prog, &sema, &space, Mode::Polymorphic);
        assert!(a.solution.is_ok());
        t.elapsed()
    };
    let t1 = time_for(500);
    let t4 = time_for(2000);
    assert!(
        t4 < t1 * 10 + std::time::Duration::from_millis(50),
        "4x input took {t4:?} vs {t1:?}"
    );
}
