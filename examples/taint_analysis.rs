//! Taint tracking as a qualifier system, including the flow-sensitive
//! extension sketched in §6 of the paper (per-program-point qualifiers
//! with strong updates) — the lclint-style analysis the core system
//! cannot express.
//!
//! ```text
//! cargo run --example taint_analysis
//! ```

use quals::lambda::flow::{analyze, FlowProgram, Stmt};
use quals::lambda::infer_program;
use quals::lambda::rules::TaintRules;
use quals::lattice::QualSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = TaintRules::space();

    println!("== flow-insensitive (the core system) ==");
    for (what, src) in [
        ("direct flow", "({tainted} 5)|{~tainted}"),
        (
            "implicit flow via a conditional",
            "(if {tainted} 1 then 1 else 0 fi)|{~tainted}",
        ),
        ("untainted stays untainted", "(if 1 then 1 else 0 fi)|{~tainted}"),
    ] {
        let out = infer_program(src, &space, &TaintRules)?;
        println!(
            "  {:<35} {}",
            what,
            if out.is_well_qualified() { "clean" } else { "TAINT CAUGHT" }
        );
    }

    println!();
    println!("== flow-sensitive (§6 extension) ==");
    // x receives network input (tainted), is sanitized by a strong
    // update, and is then passed to a sink requiring untainted data.
    let tainted = space.parse_set("tainted")?;
    let clean = space.none();
    let mut p = FlowProgram::new(["x", "y"]);
    p.push(Stmt::Assign {
        target: "x".into(),
        qual: tainted,
        strong: true,
    });
    p.push(Stmt::Copy {
        target: "y".into(),
        source: "x".into(),
        strong: true,
    });
    p.push(Stmt::Assign {
        target: "x".into(),
        qual: clean,
        strong: true, // sanitize(x): a strong update
    });
    p.push(Stmt::Require {
        var: "x".into(),
        bound: clean,
    });
    let r = analyze(&space, &p);
    println!("  sanitize-then-use: {}", if r.ok() { "clean" } else { "TAINT CAUGHT" });
    for point in 0..=4 {
        let qx = r.qual_at("x", point).map(|q| render(&space, q));
        let qy = r.qual_at("y", point).map(|q| render(&space, q));
        println!(
            "    point {point}: x = {:<10} y = {}",
            qx.unwrap_or_default(),
            qy.unwrap_or_default()
        );
    }
    println!("  (x's qualifier varies per program point — impossible in the core system)");

    // The same program with a *weak* sanitization cannot prove cleanliness.
    let mut weak = FlowProgram::new(["x"]);
    weak.push(Stmt::Assign {
        target: "x".into(),
        qual: tainted,
        strong: true,
    });
    weak.push(Stmt::Assign {
        target: "x".into(),
        qual: clean,
        strong: false,
    });
    weak.push(Stmt::Require {
        var: "x".into(),
        bound: clean,
    });
    let r = analyze(&space, &weak);
    println!("  weak sanitization:  {}", if r.ok() { "clean" } else { "TAINT CAUGHT" });
    Ok(())
}

fn render(space: &QualSpace, q: quals::lattice::QualSet) -> String {
    let s = space.render(q);
    if s.is_empty() {
        "untainted".to_owned()
    } else {
        s
    }
}
