//! Partial evaluation driven by binding-time analysis — §1's motivating
//! application of the `static`/`dynamic` qualifiers ("binding-time
//! analysis ... is used in partial evaluation systems").
//!
//! The qualifier inference decides what is static; the specializer then
//! folds conditionals, unfolds applications, and eliminates static lets,
//! leaving a residual program over the `{dynamic}` inputs only.
//!
//! ```text
//! cargo run --example partial_eval
//! ```

use quals::lambda::rules::BindingTimeRules;
use quals::lambda::specialize::specialize_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = BindingTimeRules::space();

    let programs: &[(&str, &str)] = &[
        (
            "an interpreter-style dispatcher over a static opcode",
            "let exec = \\op. \\arg.
               if op then arg + 1 else arg * 2 fi in
             let d = {dynamic} 0 in
             exec 1 d
             ni ni",
        ),
        (
            "a static configuration table consulted at run time",
            "let config = (3, (10, 0)) in
             let scale = fst config in
             let offset = fst (snd config) in
             let d = {dynamic} 0 in
             d * scale + offset
             ni ni ni ni",
        ),
        (
            "higher-order combinators dissolve",
            "let compose = \\f. \\g. \\x. f (g x) in
             let add3 = \\x. x + 3 in
             let dbl = \\x. x * 2 in
             let d = {dynamic} 0 in
             compose add3 dbl d
             ni ni ni ni",
        ),
        (
            "dynamic control flow is preserved (both branches kept)",
            "let d = {dynamic} 0 in
             if d then 1 + 2 else 3 * 4 fi ni",
        ),
    ];

    for (what, src) in programs {
        let spec = specialize_program(src)?;
        println!("— {what}");
        println!("  source:   {}", one_line(src));
        println!("  residual: {}", spec.residual.render(&space));
        println!(
            "  ({} ifs folded, {} applications unfolded)",
            spec.ifs_folded, spec.apps_unfolded
        );
        println!();
    }

    println!(
        "The binding-time well-formedness condition (§2: nothing dynamic\n\
         inside static) is exactly what lets the specializer trust the\n\
         analysis: it never needs a dynamic value to make progress."
    );
    Ok(())
}

fn one_line(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}
