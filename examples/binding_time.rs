//! Binding-time analysis as a qualifier system (§1, §2 of the paper):
//! positive qualifier `dynamic` (with `static` as its absence), the
//! well-formedness condition that nothing dynamic appears inside a
//! static value, and propagation through conditionals and application.
//!
//! ```text
//! cargo run --example binding_time
//! ```

use quals::lambda::rules::BindingTimeRules;
use quals::lambda::infer_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = BindingTimeRules::space();

    let cases: &[(&str, &str)] = &[
        (
            "fully static computation",
            "(if 1 then 2 else 3 fi)|{~dynamic}",
        ),
        (
            "dynamic guard infects the result",
            "(if {dynamic} 1 then 2 else 3 fi)|{~dynamic}",
        ),
        (
            "static data flows into dynamic contexts freely",
            "{dynamic} (if 1 then 2 else 3 fi)",
        ),
        (
            "well-formedness: no dynamic inside a static closure",
            "(\\x. {dynamic} 1)|{~dynamic}",
        ),
        (
            "a dynamic function produces dynamic results",
            "(({dynamic} \\x. x) 1)|{~dynamic}",
        ),
    ];

    for (what, src) in cases {
        let out = infer_program(src, &space, &BindingTimeRules)?;
        println!(
            "{:<55} {}",
            what,
            if out.is_well_qualified() {
                "OK (static where asserted)"
            } else {
                "REJECTED (dynamic leaked into a static position)"
            }
        );
    }

    println!();
    println!(
        "A partial evaluator would residualize exactly the dynamic parts;\n\
         the qualifier framework recovers Henglein-style BTA for free."
    );
    Ok(())
}
