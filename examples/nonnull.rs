//! lclint's `nonnull` annotation as a type qualifier (§1 of the paper
//! cites Evans's lclint: "adding such annotations greatly increased
//! compile-time detection of null pointer dereferences").
//!
//! `nonnull` is *negative* (`nonnull τ ≤ τ`): fresh references are
//! non-null, a fallible lookup marks its result maybe-null by annotating
//! up past `¬nonnull`, and the rule set requires `nonnull` at every
//! dereference and write.
//!
//! ```text
//! cargo run --example nonnull
//! ```

use quals::lambda::infer_program;
use quals::lambda::rules::NonnullRules;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = NonnullRules::space();

    let cases: &[(&str, &str)] = &[
        ("fresh refs are non-null", "!(ref 1)"),
        (
            "deref of a fallible lookup result",
            "let lookup = \\k. {~nonnull} ref k in !(lookup 5) ni",
        ),
        (
            "write through a fallible lookup result",
            "let lookup = \\k. {~nonnull} ref k in (lookup 5) := 1 ni",
        ),
        (
            "passing a maybe-null ref around without using it",
            "let lookup = \\k. {~nonnull} ref k in let p = lookup 5 in () ni ni",
        ),
        (
            "storing through a known-good ref while holding a maybe-null one",
            "let lookup = \\k. {~nonnull} ref k in
             let good = ref 7 in
             let p = lookup 5 in
             good := 8
             ni ni ni",
        ),
    ];

    for (what, src) in cases {
        let out = infer_program(src, &space, &NonnullRules)?;
        println!(
            "{:<60} {}",
            what,
            if out.is_well_qualified() {
                "OK"
            } else {
                "NULL-DEREF CAUGHT"
            }
        );
    }

    println!();
    println!(
        "A flow-sensitive null *check* (if (p) ...) needs the §6 extension;\n\
         see examples/taint_analysis.rs for per-program-point qualifiers."
    );
    Ok(())
}
