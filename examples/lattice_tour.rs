//! A tour of the qualifier lattice machinery: builds the paper's
//! Figure 2 lattice (positive `const` and `dynamic`, negative `nonzero`)
//! and prints its Hasse structure and the derived operations.
//!
//! ```text
//! cargo run --example lattice_tour
//! ```

use quals::lattice::QualSpace;

fn main() {
    let space = QualSpace::figure2();
    println!("Figure 2 lattice: {} qualifiers -> {} elements", space.len(), space.elem_count());
    for (id, decl) in space.iter() {
        println!("  {decl}  (coordinate {})", id.index());
    }
    println!();

    // Enumerate all 8 elements with their covers (the Hasse diagram).
    let elems: Vec<_> = space.elements().collect();
    println!("Hasse diagram (x < y with nothing between):");
    for &x in &elems {
        for &y in &elems {
            if x != y && space.le(x, y) {
                let is_cover = !elems
                    .iter()
                    .any(|&z| z != x && z != y && space.le(x, z) && space.le(z, y));
                if is_cover {
                    println!("  {{{}}} < {{{}}}", space.render(x), space.render(y));
                }
            }
        }
    }
    println!();

    // The ¬q operation used by rule (Assign′).
    let konst = space.id("const").unwrap();
    println!(
        "not_q(const) = {{{}}}  (the greatest element without const —\n\
         the upper bound (Assign') places on assignment targets)",
        space.render(space.not_q(konst))
    );

    // Join and meet.
    let a = space.parse_set("const nonzero").unwrap();
    let b = space.parse_set("dynamic nonzero").unwrap();
    println!(
        "{{{}}} join {{{}}} = {{{}}}",
        space.render(a),
        space.render(b),
        space.render(space.join(a, b))
    );
    println!(
        "{{{}}} meet {{{}}} = {{{}}}",
        space.render(a),
        space.render(b),
        space.render(space.meet(a, b))
    );
}
