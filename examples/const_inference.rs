//! Const inference over a C program (§4 of the paper): run both the
//! monomorphic and the polymorphic analysis and print the signatures
//! with every inferable `const` inserted.
//!
//! ```text
//! cargo run --example const_inference
//! ```

use quals::constinfer::{analyze_source, Mode};

const PROGRAM: &str = r#"
/* A miniature version of the benchmarks: a reader, a writer, and the
   strchr pattern that needs qualifier polymorphism. */

extern int printf(const char *fmt, ...);

char *find(char *s, int c) {        /* returns a pointer into s */
  while (*s && *s != c) s++;
  return s;
}

void chop(char *line) {             /* writes through find's result */
  char *p = find(line, '\n');
  *p = 0;
}

int count_dots(char *path) {        /* only reads through find */
  int n = 0;
  char *p = find(path, '.');
  while (*p) { n++; p = find(p + 1, '.'); }
  return n;
}

int sum(char *data, int n) {        /* plain reader: mono suffices */
  int acc = 0;
  for (int i = 0; i < n; i++) acc += data[i];
  return acc;
}

int main(void) {
  char buf[32];
  buf[0] = 'x';
  chop(buf);
  printf("%d\n", count_dots("a.b.c") + sum(buf, 3));
  return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = quals::cfront::parse(PROGRAM)?;

    for mode in [Mode::Monomorphic, Mode::Polymorphic] {
        let result = analyze_source(PROGRAM, mode)?;
        let c = result.counts;
        println!("== {mode:?} ==");
        println!(
            "positions: {} total, {} declared const, {} inferable const",
            c.total, c.declared, c.inferred
        );
        println!("{}", result.annotated_signatures(&prog));
    }

    println!(
        "Note how `count_dots` and `sum` gain const under the polymorphic\n\
         analysis even though `find` is also used by the writer `chop` —\n\
         the paper's §1 motivation for qualifier polymorphism."
    );
    Ok(())
}
