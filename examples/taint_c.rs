//! Taint tracking over *C* through the same pipeline that infers
//! `const` (§4 of the paper): the qualifier registry plugs a `tainted`
//! space into the C engine, so attacker-controlled data (`getenv`,
//! `fgets`, …) is traced through assignments and calls to the sinks
//! that must never see it (`system`, `popen`, `unlink`, …) — the
//! Shankar/STonesoup-style format-string/command-injection check that
//! CQual became famous for, here riding the paper's const machinery
//! unchanged.
//!
//! All requested qualifier spaces solve *simultaneously* in one
//! word-parallel propagation pass; the example runs const + tainted +
//! nonnull together to show the coordinates do not interfere.
//!
//! ```text
//! cargo run --example taint_c
//! ```

use quals::constinfer::{
    analyze_source_with_options_in, space_for, Budgets, Mode, Options,
};

/// A config reader with a command-injection bug: the attacker-owned
/// HOME ends up inside a `system()` command line.
const INJECTED: &str = r#"
char *getenv(const char *name);
int system(const char *cmd);
int sprintf(char *buf, const char *fmt, const char *arg);

int rebuild_cache(char *cmd) {
    return system(cmd);            /* sink: shells out */
}

int main(void) {
    char cmdbuf[128];
    char *home = getenv("HOME");   /* source: attacker-controlled */
    sprintf(cmdbuf, "ls %s", home);
    return rebuild_cache(home);    /* tainted data reaches the sink */
}
"#;

/// The same program with the taint laundered through a checker: the
/// sink only ever sees the trusted constant.
const CLEAN: &str = r#"
char *getenv(const char *name);
int system(const char *cmd);

int rebuild_cache(const char *cmd) {
    return system(cmd);
}

int main(void) {
    char *home = getenv("HOME");
    int have_home = home != 0;
    if (have_home)
        return rebuild_cache("ls");  /* trusted constant only */
    return 1;
}
"#;

fn run(what: &str, src: &str) {
    // const + tainted + nonnull: one constraint world, one solve.
    let space = space_for("const,tainted,nonnull").expect("built-in quals");
    let out = analyze_source_with_options_in(
        src,
        &space,
        Mode::Polymorphic,
        Options::default(),
        Budgets::default(),
    );
    println!("== {what} ==");
    match &out.result {
        Some(result) => {
            println!("  clean: no tainted value reaches a sink or deref");
            for qc in &result.qual_counts {
                println!(
                    "    {:<8} {} position(s) may carry it, {} must",
                    qc.name, qc.may, qc.must
                );
            }
        }
        None => {
            println!("  TAINT CAUGHT:");
            for d in &out.skipped {
                print!("{}", d.render(Some(src)));
            }
        }
    }
    println!();
}

fn main() {
    run("command injection (HOME -> system)", INJECTED);
    run("sanitized variant", CLEAN);
}
