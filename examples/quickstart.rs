//! Quickstart: declare qualifiers, infer qualified types for a program
//! in the paper's core language, and inspect the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use quals::lambda::rules::NonzeroRules;
use quals::lambda::{eval, infer_program, parse};
use quals::lattice::QualSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The qualifier lattice of the paper's Figure 2: positive `const`
    // and `dynamic`, negative `nonzero`.
    let space = QualSpace::figure2();
    println!("qualifier space: {} qualifiers, {} lattice points", space.len(), space.elem_count());
    println!("  bottom = {{{}}}", space.render(space.bottom()));
    println!("  top    = {{{}}}", space.render(space.top()));
    println!();

    // A program in the core language: allocate a nonzero ref, read it
    // back, and assert the read is still nonzero.
    let good = "let x = ref {nonzero} 37 in (!x)|{nonzero} ni";
    let out = infer_program(good, &space, &NonzeroRules)?;
    println!("program: {good}");
    println!("  well qualified? {}", out.is_well_qualified());
    println!("  type: {}", out.render_root());
    println!("  {} constraints over {} qualifier variables", out.constraints.len(), out.vars.count());
    println!();

    // The paper's §2.4 counterexample: an alias writes 0 into the cell.
    // The invariant rule (SubRef) catches it.
    let bad = "let x = ref {nonzero} 37 in
               let y = x in
               let u = y := 0 in
               (!x)|{nonzero}
               ni ni ni";
    let out = infer_program(bad, &space, &NonzeroRules)?;
    println!("program: (the §2.4 aliased-write example)");
    println!("  well qualified? {}", out.is_well_qualified());
    for v in out.violations() {
        println!("  violation at: {}", v.constraint.origin);
    }
    println!();

    // The dynamic semantics (Figure 5) agrees: running it gets stuck at
    // the assertion.
    let expr = parse(bad, &space)?;
    match eval::eval_with(&expr, &space, &NonzeroRules, 10_000) {
        Err(eval::EvalError::Stuck { reason, .. }) => {
            println!("dynamic check agrees, stuck: {reason}");
        }
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}
