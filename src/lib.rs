//! `quals` — a complete Rust reproduction of *A Theory of Type
//! Qualifiers* (Jeffrey S. Foster, Manuel Fähndrich, Alexander Aiken;
//! PLDI 1999).
//!
//! This umbrella crate re-exports the whole system:
//!
//! * [`lattice`] — qualifier declarations and the product qualifier
//!   lattice (paper §2, Definitions 1–2, Figure 2);
//! * [`solve`] — the atomic subtype-constraint solver and polymorphic
//!   constrained schemes (§3.1–§3.2);
//! * [`lambda`] — the paper's core language: a qualified lambda calculus
//!   with references, qualifier annotations/assertions, checking and
//!   inference, let-polymorphism, and the Figure-5 operational semantics
//!   (§2–§3);
//! * [`cfront`] — a C front end (lexer, parser, typechecker) serving as
//!   the substrate for const inference (§4);
//! * [`constinfer`] — monomorphic and polymorphic const inference for C,
//!   including the function dependence graph traversal and the
//!   interesting-position counting of the evaluation (§4);
//! * [`cgen`] — the deterministic benchmark generator standing in for the
//!   paper's six C benchmark programs (§4.4).
//!
//! # Quickstart
//!
//! Infer qualifiers for a small program in the paper's core language:
//!
//! ```
//! use quals::lambda::{infer_program, rules::ConstRules};
//!
//! let src = "let x = ref 1 in x := 2 ni";
//! let outcome = infer_program(src, &ConstRules::space(), &ConstRules)?;
//! assert!(outcome.is_well_qualified());
//! # Ok::<(), quals::lambda::LambdaError>(())
//! ```
//!
//! See `examples/` for const inference over C sources, binding-time
//! analysis, taint checking, and the paper's polymorphism examples.

pub use qual_cfront as cfront;
pub use qual_cgen as cgen;
pub use qual_constinfer as constinfer;
pub use qual_lambda as lambda;
pub use qual_lattice as lattice;
pub use qual_solve as solve;
